"""Location update and terminal paging costs (paper Section 5).

Given a mobility model, threshold ``d``, delay bound ``m``, and cost
weights ``(U, V)``:

* average location update cost per slot (eqn (61)):
  ``C_u(d) = p_{d,d} * a_{d,d+1} * U``;
* average paging cost per slot (eqns (62)-(65)):
  ``C_v(d, m) = c V sum_j alpha_j w_j`` for the chosen partition, which
  reduces to ``c g(d) V`` when ``m = 1`` (blanket polling);
* average total cost (eqn (66)): ``C_T(d, m) = C_u(d) + C_v(d, m)``.

The partition defaults to the paper's SDF scheme but any
:class:`~repro.paging.PagingPlan` factory can be supplied, which is how
the optimal-partition ablation is wired up.

Evaluation strategy
-------------------

Breakdowns are memoized per ``(d, m)``: repeated queries -- an
exhaustive search followed by a breakdown at the optimum, say -- solve
each operating point once.  :meth:`CostEvaluator.cost_curve` prefers
the batched surface solver of :mod:`repro.core.batch` (all thresholds
in one triangular NumPy recursion) whenever the evaluator uses the
default SDF partition on a model with threshold-invariant rates; the
per-point scalar path remains available (``method="scalar"``) as the
cross-check reference and is used automatically for custom plan
factories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..exceptions import ParameterError
from ..observability.context import current as _observability
from ..paging import PagingPlan, sdf_partition
from .models import MobilityModel
from .parameters import CostParams, validate_delay, validate_threshold

__all__ = ["CostBreakdown", "CostEvaluator", "PlanFactory"]

#: Signature of a partition factory: maps (model, d, m) to a plan.
#: ``model`` is passed so factories can use the steady-state
#: distribution (the DP-optimal partition needs it).
PlanFactory = Callable[[MobilityModel, int, object], PagingPlan]


def _sdf_factory(model: MobilityModel, d: int, m) -> PagingPlan:
    return sdf_partition(d, m)


@dataclass(frozen=True)
class CostBreakdown:
    """The cost components of one ``(d, m)`` operating point."""

    threshold: int
    delay_bound: float
    update_cost: float
    paging_cost: float
    expected_polled_cells: float
    expected_delay: float

    @property
    def total_cost(self) -> float:
        """``C_T = C_u + C_v`` (paper eqn (66))."""
        return self.update_cost + self.paging_cost


class CostEvaluator:
    """Evaluates ``C_u``, ``C_v``, and ``C_T`` for one model and cost pair.

    Parameters
    ----------
    model:
        A :class:`~repro.core.models.MobilityModel` (fixes ``q, c`` and
        the geometry).
    costs:
        The ``(U, V)`` weights.
    plan_factory:
        Optional partition factory; defaults to the paper's SDF scheme.
    convention:
        Boundary-rate convention for ``C_u`` at ``d = 0``; ``"paper"``
        reproduces the published tables (see models module docstring).
    """

    def __init__(
        self,
        model: MobilityModel,
        costs: CostParams,
        plan_factory: Optional[PlanFactory] = None,
        convention: str = "paper",
    ) -> None:
        self.model = model
        self.costs = costs
        self.plan_factory = plan_factory or _sdf_factory
        self.convention = convention
        #: Memoized breakdowns keyed by ``(d, m)``; populated by every
        #: evaluation path so an optimizer's winning point is never
        #: re-solved for its report.
        self._breakdowns: Dict[Tuple[int, float], CostBreakdown] = {}
        #: Cached batched surfaces keyed by delay bound (see
        #: :meth:`_batched_surface`).
        self._surfaces: Dict[float, "object"] = {}

    # ------------------------------------------------------------------

    @property
    def uses_sdf_partition(self) -> bool:
        """True when this evaluator pages with the paper's SDF scheme."""
        return self.plan_factory is _sdf_factory

    def _can_batch(self) -> bool:
        return self.uses_sdf_partition and getattr(
            self.model, "threshold_invariant_rates", False
        )

    def update_cost(self, d: int) -> float:
        """``C_u(d)`` -- average location update cost per slot (eqn (61))."""
        d = validate_threshold(d)
        p = self.model.steady_state(d)
        rate = self.model.update_rate(d, convention=self.convention)
        return float(p[d]) * rate * self.costs.update_cost

    def plan(self, d: int, m) -> PagingPlan:
        """The paging plan this evaluator uses at ``(d, m)``."""
        return self.plan_factory(self.model, validate_threshold(d), validate_delay(m))

    def _paging_cost_from_cells(self, cells: float) -> float:
        """``C_v = c V E[polled cells]`` -- the outer factor of eqn (65)."""
        return self.model.c * self.costs.poll_cost * cells

    def paging_cost(self, d: int, m) -> float:
        """``C_v(d, m)`` -- average paging cost per slot (eqn (65)).

        Served from the breakdown memo when the point was already
        evaluated; otherwise computes only the paging component (no
        update-cost work).
        """
        d = validate_threshold(d)
        m = validate_delay(m)
        cached = self._breakdowns.get((d, m))
        if cached is not None:
            return cached.paging_cost
        p = self.model.steady_state(d)
        plan = self.plan(d, m)
        cells = plan.expected_polled_cells(self.model.topology, p)
        return self._paging_cost_from_cells(cells)

    def total_cost(self, d: int, m) -> float:
        """``C_T(d, m) = C_u(d) + C_v(d, m)`` (eqn (66))."""
        return self.breakdown(d, m).total_cost

    def breakdown(self, d: int, m) -> CostBreakdown:
        """Full cost decomposition at one operating point (memoized)."""
        d = validate_threshold(d)
        m = validate_delay(m)
        key = (d, m)
        registry = _observability().registry
        cached = self._breakdowns.get(key)
        if cached is not None:
            registry.counter(
                "analytic_memo_hits_total", model=self.model.name
            ).inc()
            return cached
        surface = self._surfaces.get(m)
        if surface is not None and surface.d_max >= d:
            registry.counter(
                "analytic_solves_total", model=self.model.name, path="surface"
            ).inc()
            breakdown = self._breakdown_from_surface(surface, d, m)
        else:
            registry.counter(
                "analytic_solves_total", model=self.model.name, path="scalar"
            ).inc()
            p = self.model.steady_state(d)
            plan = self.plan(d, m)
            cells = plan.expected_polled_cells(self.model.topology, p)
            delay = plan.expected_delay(p)
            breakdown = CostBreakdown(
                threshold=d,
                delay_bound=m if m == math.inf else int(m),
                update_cost=self.update_cost(d),
                paging_cost=self._paging_cost_from_cells(cells),
                expected_polled_cells=cells,
                expected_delay=delay,
            )
        self._breakdowns[key] = breakdown
        return breakdown

    def _breakdown_from_surface(self, surface, d: int, m) -> CostBreakdown:
        """Materialize one grid point of a batched surface."""
        row = surface.delay_index(m)
        return CostBreakdown(
            threshold=d,
            delay_bound=m if m == math.inf else int(m),
            update_cost=float(surface.update[d]),
            paging_cost=float(surface.paging[row, d]),
            expected_polled_cells=float(surface.expected_cells[row, d]),
            expected_delay=float(surface.expected_delay[row, d]),
        )

    # ------------------------------------------------------------------

    def _batched_surface(self, m, d_max: int):
        """A :class:`~repro.core.batch.CostSurfaceGrid` covering
        ``0..d_max`` for delay ``m``, cached and grown on demand.

        Returns None when this evaluator cannot use the batched path
        (custom plan factory, or threshold-dependent rates).
        """
        if not self._can_batch():
            return None
        surface = self._surfaces.get(m)
        if surface is None or surface.d_max < d_max:
            from .batch import compute_cost_surface  # deferred: heavy numpy path

            # Reuse the triangular steady-state solve from any other
            # delay's surface that is large enough: row d is identical
            # for every matrix size >= d + 1, so only the SDF weight
            # pass is new work per delay bound.
            steady = None
            for other in self._surfaces.values():
                if other.d_max >= d_max:
                    steady = other.steady
                    break
            with _observability().tracer.span(
                "analytic.batched_surface",
                model=self.model.name,
                d_max=d_max,
                delay=str(m),
                reused_steady=steady is not None,
            ):
                surface = compute_cost_surface(
                    self.model,
                    self.costs,
                    d_max,
                    delays=(m,),
                    convention=self.convention,
                    steady=steady,
                )
            self._surfaces[m] = surface
        return surface

    def cost_curve(self, m, d_max: int, method: str = "auto"):
        """Return ``[C_T(0, m), ..., C_T(d_max, m)]`` as a list of floats.

        The raw material for both the exhaustive optimizer and the
        figure benches.  ``method`` selects the evaluation path:

        ``"auto"``
            the batched surface solver when the evaluator pages with
            the default SDF partition (one triangular NumPy recursion
            for all thresholds), falling back to the scalar loop
            otherwise;
        ``"batched"``
            force the batched solver; raises
            :class:`~repro.exceptions.ParameterError` if this
            evaluator cannot batch;
        ``"scalar"``
            force the per-threshold reference path (the cross-check
            used by ``benchmarks/bench_analytic.py``).
        """
        m = validate_delay(m)
        d_max = validate_threshold(d_max)
        if method not in ("auto", "batched", "scalar"):
            raise ParameterError(
                f"unknown cost_curve method {method!r}; "
                "expected auto/batched/scalar"
            )
        if method != "scalar":
            surface = self._batched_surface(m, d_max)
            if surface is not None:
                return [float(x) for x in surface.curve(m)[: d_max + 1]]
            if method == "batched":
                raise ParameterError(
                    "this evaluator cannot use the batched surface (custom "
                    "plan factory or threshold-dependent rates); use "
                    "method='auto' or 'scalar'"
                )
        return [self.total_cost(d, m) for d in range(d_max + 1)]

    def __repr__(self) -> str:
        return (
            f"CostEvaluator(model={self.model!r}, U={self.costs.update_cost}, "
            f"V={self.costs.poll_cost}, convention={self.convention!r})"
        )
