"""Generic solver for the paper's "birth-death with reset" Markov chain.

Sections 3 and 4 of the paper model the ring distance of a terminal
from its center cell as a discrete-time Markov chain on states
``0 .. d``:

* from state ``i`` the distance grows to ``i + 1`` with probability
  ``a_i`` and shrinks to ``i - 1`` with probability ``b_i``;
* from any state a call arrival (probability ``c``) resets the chain to
  state 0 (the network learns the location while paging, so the center
  cell becomes the current cell);
* from the boundary state ``d`` an outward move (probability ``a_d``)
  triggers a location update, which also resets the chain to 0.

The three model variants (1-D, 2-D exact, 2-D approximate) differ only
in the rate arrays ``a`` and ``b``; everything else is shared.  This
module provides two *independent* steady-state solvers:

:func:`solve_steady_state_matrix`
    builds the full transition matrix and solves the linear system with
    :func:`numpy.linalg.solve` -- the brute-force reference;
:func:`solve_steady_state_recursive`
    the paper's Section 4.1 approach: express every probability in
    terms of ``p_d`` through the balance equations, then normalize.

The closed forms of Sections 3.2 and 4.2 live in
:mod:`repro.core.closed_form`.  Tests cross-check all three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ParameterError, SolverError

__all__ = [
    "ResetChain",
    "solve_steady_state_matrix",
    "solve_steady_state_recursive",
]

#: Tolerance for the internal consistency check of the recursive solver
#: (residual of the state-0 balance equation, relative to 1).
_BALANCE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ResetChain:
    """A birth-death-with-reset chain on states ``0 .. d``.

    Parameters
    ----------
    outward:
        Array ``a_0 .. a_d``; ``a_i`` is the probability of moving from
        state ``i`` to ``i + 1`` in one slot.  ``a_d`` is the
        boundary-crossing (location update) probability.
    inward:
        Array ``b_0 .. b_d``; ``b_i`` is the probability of moving from
        ``i`` to ``i - 1``.  ``b_0`` must be zero.
    reset:
        The call-arrival probability ``c``; every state resets to 0
        with this probability.
    """

    outward: Sequence[float]
    inward: Sequence[float]
    reset: float
    _a: np.ndarray = field(init=False, repr=False, compare=False)
    _b: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        a = np.asarray(self.outward, dtype=float)
        b = np.asarray(self.inward, dtype=float)
        if a.ndim != 1 or b.ndim != 1 or a.shape != b.shape:
            raise ParameterError(
                f"outward/inward must be equal-length 1-D arrays, got shapes "
                f"{a.shape} and {b.shape}"
            )
        if a.size == 0:
            raise ParameterError("the chain needs at least one state")
        c = self.reset
        if not 0.0 <= c < 1.0:
            raise ParameterError(f"reset probability must be in [0, 1), got {c}")
        if np.any(a < 0) or np.any(b < 0):
            raise ParameterError("transition probabilities must be >= 0")
        if b[0] != 0.0:
            raise ParameterError(f"b_0 must be 0 (state 0 has no inward move), got {b[0]}")
        if a.size > 1 and np.any(a[:-1] <= 0):
            # a_d may be zero (absorbing-ish boundary) but interior
            # outward rates must be positive or upper states would be
            # unreachable and the recursive solver would divide by zero.
            raise ParameterError("interior outward probabilities a_0..a_{d-1} must be > 0")
        if np.any(a + b + c > 1.0 + 1e-12):
            raise ParameterError("a_i + b_i + c must not exceed 1 for any state")
        object.__setattr__(self, "_a", a)
        object.__setattr__(self, "_b", b)

    @property
    def size(self) -> int:
        """Number of states, ``d + 1``."""
        return self._a.size

    @property
    def threshold(self) -> int:
        """The boundary state index ``d``."""
        return self._a.size - 1

    @property
    def a(self) -> np.ndarray:
        """Outward rates as a read-only numpy array."""
        view = self._a.view()
        view.flags.writeable = False
        return view

    @property
    def b(self) -> np.ndarray:
        """Inward rates as a read-only numpy array."""
        view = self._b.view()
        view.flags.writeable = False
        return view

    def transition_matrix(self) -> np.ndarray:
        """Return the full ``(d+1) x (d+1)`` one-step transition matrix.

        Row ``i`` is the distribution of the next state given the
        current state is ``i``.  Every row sums to one.
        """
        a, b, c = self._a, self._b, self.reset
        n = self.size
        P = np.zeros((n, n))
        for i in range(n):
            stay = 1.0 - c
            if i > 0:
                P[i, 0] += c
            else:
                stay += c  # a call in state 0 leaves the chain in state 0
            if i < n - 1:
                P[i, i + 1] += a[i]
                stay -= a[i]
            else:
                P[i, 0] += a[i]  # boundary crossing = update = reset
                stay -= a[i]
            if i > 0:
                P[i, i - 1] += b[i]
                stay -= b[i]
            P[i, i] += stay
        return P


def solve_steady_state_matrix(chain: ResetChain) -> np.ndarray:
    """Solve ``pi = pi P`` by direct linear algebra.

    Replaces the last balance equation with the normalization
    ``sum(pi) = 1`` to obtain a non-singular system.  O(d^3) but exact
    up to floating point; used as the reference implementation.
    """
    P = chain.transition_matrix()
    n = chain.size
    A = P.T - np.eye(n)
    A[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    try:
        pi = np.linalg.solve(A, rhs)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        raise SolverError(f"steady-state system is singular: {exc}") from exc
    if np.any(pi < -1e-10):
        raise SolverError(f"steady state has negative component: min={pi.min()}")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise SolverError(f"steady state failed to normalize (sum={total})")
    return pi / total


def solve_steady_state_recursive(chain: ResetChain) -> np.ndarray:
    """Solve the chain by the paper's recursive method (Section 4.1).

    Starting from an unnormalized ``u_d = 1``, the balance equation of
    state ``d`` gives ``u_{d-1}``, the interior balance equations give
    ``u_{d-2} .. u_1`` top-down, the state-1 balance gives ``u_0``, and
    the law of total probability normalizes.  O(d) time.

    The state-0 balance equation, which is not used in the construction,
    is evaluated afterwards as a consistency check.
    """
    a, b, c = chain._a, chain._b, chain.reset
    d = chain.threshold
    if d == 0:
        return np.ones(1)
    u = np.zeros(d + 1)
    u[d] = 1.0
    # State-d balance: u_d (a_d + b_d + c) = u_{d-1} a_{d-1}.
    u[d - 1] = u[d] * (a[d] + b[d] + c) / a[d - 1]
    # Interior balance for i = d-1 .. 2 yields u_{i-1}:
    #   u_i (a_i + b_i + c) = u_{i-1} a_{i-1} + u_{i+1} b_{i+1}
    for i in range(d - 1, 1, -1):
        u[i - 1] = (u[i] * (a[i] + b[i] + c) - u[i + 1] * b[i + 1]) / a[i - 1]
    if d >= 2:
        # State-1 balance yields u_0 (its inflow from state 2 exists).
        u[0] = (u[1] * (a[1] + b[1] + c) - u[2] * b[2]) / a[0]
    else:
        # d == 1: state-1 balance has no state-2 term.
        u[0] = u[1] * (a[1] + b[1] + c) / a[0]
    if np.any(u < 0) or not np.all(np.isfinite(u)):
        raise SolverError(
            "recursive solve produced an invalid unnormalized vector; "
            "the chain parameters are numerically pathological"
        )
    pi = u / u.sum()
    _check_reset_balance(chain, pi)
    return pi


def _check_reset_balance(chain: ResetChain, pi: np.ndarray) -> None:
    """Verify the (unused) state-0 balance equation, paper eqn (5).

    ``p_0 a_0 = p_1 b_1 + p_d a_d + c * sum_{k>=1} p_k``.
    """
    a, b, c = chain._a, chain._b, chain.reset
    d = chain.threshold
    lhs = pi[0] * a[0]
    rhs = pi[1] * b[1] + pi[d] * a[d] + c * pi[1:].sum()
    if abs(lhs - rhs) > _BALANCE_TOLERANCE:
        raise SolverError(
            f"state-0 balance violated by {abs(lhs - rhs):.3e}; "
            "recursive steady-state solve is inconsistent"
        )
