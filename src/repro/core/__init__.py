"""The paper's primary contribution: models, costs, and optimization.

Submodules
----------

``parameters``
    validated ``(q, c)`` and ``(U, V)`` parameter objects;
``chains``
    the generic birth-death-with-reset Markov chain and its matrix and
    recursive steady-state solvers;
``closed_form``
    the paper's closed-form steady states (Sections 3.2, 4.2);
``models``
    the 1-D, 2-D exact, and 2-D approximate mobility models;
``costs``
    update/paging/total cost evaluation (Section 5);
``batch``
    batched cost-surface solver: all thresholds in one triangular
    NumPy recursion (the fast path behind every exhaustive scan);
``optimizers``
    exhaustive search and simulated annealing (Section 6);
``threshold``
    the high-level "find my optimal threshold" entry point;
``near_optimal``
    the computation-constrained near-optimal scheme (Section 7).
"""

from .baselines import (
    BaselineCosts,
    location_area_costs,
    movement_based_costs,
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_timer_period,
    time_based_costs,
)
from .batch import (
    CostSurfaceGrid,
    batched_steady_states,
    batched_update_costs,
    batched_update_rates,
    compute_cost_surface,
)
from .chains import ResetChain, solve_steady_state_matrix, solve_steady_state_recursive
from .costs import CostBreakdown, CostEvaluator
from .derived import PolicyMetrics, derive_metrics
from .delay_penalty import (
    SoftDelayPolicy,
    optimal_soft_delay_partition,
    optimize_soft_delay,
)
from .movement_chain import (
    movement_staged_costs,
    optimal_staged_movement_threshold,
)
from .models import (
    MobilityModel,
    OneDimensionalModel,
    SquareGridApproximateModel,
    SquareGridModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)
from .near_optimal import NearOptimalSolution, near_optimal_threshold
from .policy_io import Policy, policy_from_solution
from .sensitivity import RegretPoint, misestimation_regret, regret_surface
from .surface import CostCurve, CostSurface, compute_surface
from .transient import TransientAnalysis, distribution_at, mixing_time, transient_cost
from .optimizers import (
    OptimizationResult,
    exhaustive_search,
    hill_climb,
    simulated_annealing,
)
from .parameters import CostParams, MobilityParams, validate_delay, validate_threshold
from .threshold import DEFAULT_MAX_THRESHOLD, ThresholdSolution, find_optimal_threshold

__all__ = [
    "BaselineCosts",
    "CostBreakdown",
    "CostSurfaceGrid",
    "CostCurve",
    "CostEvaluator",
    "CostParams",
    "CostSurface",
    "DEFAULT_MAX_THRESHOLD",
    "MobilityModel",
    "MobilityParams",
    "NearOptimalSolution",
    "OneDimensionalModel",
    "OptimizationResult",
    "Policy",
    "PolicyMetrics",
    "RegretPoint",
    "ResetChain",
    "SoftDelayPolicy",
    "SquareGridApproximateModel",
    "SquareGridModel",
    "ThresholdSolution",
    "TransientAnalysis",
    "TwoDimensionalApproximateModel",
    "TwoDimensionalModel",
    "batched_steady_states",
    "batched_update_costs",
    "batched_update_rates",
    "compute_cost_surface",
    "compute_surface",
    "derive_metrics",
    "distribution_at",
    "exhaustive_search",
    "find_optimal_threshold",
    "hill_climb",
    "location_area_costs",
    "misestimation_regret",
    "mixing_time",
    "movement_based_costs",
    "movement_staged_costs",
    "near_optimal_threshold",
    "optimal_la_radius",
    "optimal_movement_threshold",
    "optimal_soft_delay_partition",
    "optimal_staged_movement_threshold",
    "optimal_timer_period",
    "optimize_soft_delay",
    "policy_from_solution",
    "regret_surface",
    "simulated_annealing",
    "solve_steady_state_matrix",
    "solve_steady_state_recursive",
    "time_based_costs",
    "transient_cost",
    "validate_delay",
    "validate_threshold",
]
