"""Closed-form steady-state probabilities (paper Sections 3.2 and 4.2).

For the 1-D chain and for the approximate 2-D chain the interior
transition rates are state-independent, so the balance equations reduce
to a second-order linear recurrence

    p_{i+1} = beta * p_i - p_{i-1},        2 <= i <= d - 1,

with ``beta = 2 + 2c/q`` in 1-D (paper eqn (10)) and ``beta = 2 + 3c/q``
for the approximate 2-D model (eqn (50)).  The characteristic roots are

    e1 = (beta + sqrt(beta^2 - 4)) / 2,    e2 = 1 / e1,

(paper eqns (16)-(17)) and the general solution on ``1 <= i <= d`` is
``p_i = A e1^i + B e2^i``.  The boundary balance at state ``d`` forces
``A = -B e2^{2(d+1)}``, giving the numerically stable form

    p_i  proportional to  e2^i * (1 - e2^{2 (d + 1 - i)}),

in which every power is of ``e2 < 1`` -- no overflow for any ``d``.
``p_0`` follows from the state-1 balance (the rate out of state 0 is
``q``, not the interior rate, which is why state 0 is special), and the
law of total probability normalizes.

When ``c = 0`` the roots coincide (``beta = 2``) and the recurrence
solution is linear in ``i``; a dedicated branch handles it.

The paper's printed equations (23)-(32) and (45)-(49) express the same
solution through the quantities ``R_i = e1^{d-i} - e2^{d-i}`` and a
Chebyshev-like sequence ``S_i``; dividing numerator and denominator by
``e1^{d+1}`` turns them into the form used here.  The boundary cases
``d = 0, 1, 2`` are the paper's equations (33)-(38) and (55)-(60)
verbatim.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "beta_1d",
    "beta_2d_approx",
    "characteristic_roots",
    "solve_1d",
    "solve_2d_approx",
]


def beta_1d(q: float, c: float) -> float:
    """Paper equation (10): ``beta = 2 + 2c/q`` for the 1-D chain."""
    if q <= 0:
        raise ParameterError(f"q must be > 0, got {q}")
    return 2.0 + 2.0 * c / q


def beta_2d_approx(q: float, c: float) -> float:
    """Paper equation (50): ``beta = 2 + 3c/q`` for the approximate 2-D chain."""
    if q <= 0:
        raise ParameterError(f"q must be > 0, got {q}")
    return 2.0 + 3.0 * c / q


def characteristic_roots(beta: float) -> tuple:
    """Paper equations (16)-(17): roots of ``x^2 - beta x + 1 = 0``.

    Returns ``(e1, e2)`` with ``e1 >= 1 >= e2 = 1/e1``.  Requires
    ``beta >= 2``, which always holds since ``beta = 2 + k c / q`` with
    ``c >= 0``.
    """
    if beta < 2.0:
        raise ParameterError(f"beta must be >= 2, got {beta}")
    disc = math.sqrt(beta * beta - 4.0)
    e1 = (beta + disc) / 2.0
    return e1, 1.0 / e1


def _solve_uniform_interior(beta: float, d: int, neighbor_count: float) -> np.ndarray:
    """Shared closed form for a chain with uniform interior rates.

    ``neighbor_count`` is the reciprocal of the interior outward rate in
    units of ``q``: 2 for 1-D (rates ``q/2``), 3 for approximate 2-D
    (rates ``q/3``).  The state-1 balance is

        p_1 (2 q/k + c) = p_0 q + p_2 q/k
        =>  p_0 = (beta p_1 - p_2) / k          with k = neighbor_count,

    using ``beta = 2 + k c / q``.
    """
    if d < 3:
        raise AssertionError("boundary cases d <= 2 are handled by the callers")
    k = neighbor_count
    p = np.zeros(d + 1)
    if beta == 2.0:  # c == 0: repeated root, solution linear in i
        # p_i = K (d + 1 - i) for 1 <= i <= d satisfies the interior
        # recurrence and the boundary condition 2 p_d = p_{d-1}.
        i = np.arange(1, d + 1, dtype=float)
        p[1:] = (d + 1) - i
        p[0] = (beta * p[1] - p[2]) / k
        return p / p.sum()
    _, e2 = characteristic_roots(beta)
    i = np.arange(1, d + 1, dtype=float)
    # p_i proportional to e2^i (1 - e2^{2(d+1-i)}): all powers of e2 < 1.
    p[1:] = np.power(e2, i) * (1.0 - np.power(e2, 2.0 * ((d + 1) - i)))
    p[0] = (beta * p[1] - p[2]) / k
    return p / p.sum()


def solve_1d(q: float, c: float, d: int) -> np.ndarray:
    """Closed-form steady state of the 1-D chain (paper Section 3.2).

    Returns the array ``p_{0,d} .. p_{d,d}``.  Boundary cases follow the
    paper's equations (33)-(38); ``d >= 3`` uses the stable form of the
    general solution described in the module docstring.
    """
    _validate(q, c, d)
    if d == 0:
        return np.ones(1)  # eqn (33)
    if d == 1:
        denom = 2.0 * q + c
        return np.array([(q + c) / denom, q / denom])  # eqns (34)-(35)
    if d == 2:
        denom = 9.0 * q * q + 12.0 * q * c + 4.0 * c * c
        return np.array(
            [
                (2.0 * c + q) / (2.0 * c + 3.0 * q),  # eqn (36)
                4.0 * q * (c + q) / denom,  # eqn (37)
                2.0 * q * q / denom,  # eqn (38)
            ]
        )
    return _solve_uniform_interior(beta_1d(q, c), d, neighbor_count=2.0)


def solve_2d_approx(q: float, c: float, d: int) -> np.ndarray:
    """Closed-form steady state of the approximate 2-D chain (Section 4.2).

    The approximation replaces the state-dependent rates
    ``q (1/3 +- 1/(6i))`` with ``q/3`` (paper eqns (43)-(44)); the rate
    out of state 0 remains ``q``.  Boundary cases are the paper's
    equations (55)-(60).
    """
    _validate(q, c, d)
    if d == 0:
        return np.ones(1)  # eqn (55)
    if d == 1:
        denom = 5.0 * q + 3.0 * c
        return np.array([(2.0 * q + 3.0 * c) / denom, 3.0 * q / denom])  # (56)-(57)
    if d == 2:
        denom = 4.0 * q * q + 7.0 * q * c + 3.0 * c * c
        return np.array(
            [
                (3.0 * c + q) / (3.0 * c + 4.0 * q),  # eqn (58)
                q * (3.0 * c + 2.0 * q) / denom,  # eqn (59)
                q * q / denom,  # eqn (60)
            ]
        )
    return _solve_uniform_interior(beta_2d_approx(q, c), d, neighbor_count=3.0)


def _validate(q: float, c: float, d: int) -> None:
    if isinstance(d, bool) or not isinstance(d, (int, np.integer)):
        raise ParameterError(f"threshold distance must be an int, got {d!r}")
    if d < 0:
        raise ParameterError(f"threshold distance must be >= 0, got {d}")
    if not 0.0 < q <= 1.0:
        raise ParameterError(f"q must be in (0, 1], got {q}")
    if not 0.0 <= c < 1.0:
        raise ParameterError(f"c must be in [0, 1), got {c}")
