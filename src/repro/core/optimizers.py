"""Optimal-threshold search (paper Section 6).

The total cost ``C_T(d, m)`` as a function of the integer threshold
``d`` may have local minima (the partition changes discontinuously with
``d``), so gradient methods are out.  The paper offers two approaches,
both implemented here:

:func:`exhaustive_search`
    evaluate every ``d in 0..D`` and take the argmin -- always finds
    the global optimum in ``D + 1`` evaluations ("for typical call
    arrival and mobility values, the optimal distance rarely exceeds
    50");
:func:`simulated_annealing`
    the paper's iterative algorithm: propose a nearby threshold, accept
    improvements always and regressions with probability
    ``exp(delta / T)`` under the cooling schedule ``T = y / (y + k)``.

A greedy :func:`hill_climb` is included as an ablation baseline to
demonstrate *why* the paper rejects pure descent (it gets caught on the
local minima the paper mentions).

All searchers share the :class:`OptimizationResult` record and count
cost evaluations, so the optimizer bench can compare accuracy against
work performed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import ParameterError

__all__ = [
    "OptimizationResult",
    "exhaustive_search",
    "simulated_annealing",
    "hill_climb",
]

CostFunction = Callable[[int], float]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a threshold search.

    ``evaluations`` counts *distinct* thresholds whose cost was
    computed (cost lookups are memoized in every searcher, matching how
    an implementation on a power-limited terminal would behave).
    """

    optimal_threshold: int
    optimal_cost: float
    evaluations: int
    method: str
    curve: Dict[int, float] = field(default_factory=dict, repr=False)

    def cost_at(self, d: int) -> Optional[float]:
        """Cost of threshold ``d`` if it was evaluated during the search."""
        return self.curve.get(d)


class _MemoizedCost:
    """Wrap a cost function with memoization and an evaluation counter."""

    def __init__(self, fn: CostFunction) -> None:
        self._fn = fn
        self.cache: Dict[int, float] = {}

    def __call__(self, d: int) -> float:
        if d not in self.cache:
            self.cache[d] = self._fn(d)
        return self.cache[d]

    @property
    def evaluations(self) -> int:
        return len(self.cache)


def _validate_bound(d_max: int) -> int:
    if isinstance(d_max, bool) or not isinstance(d_max, int) or d_max < 0:
        raise ParameterError(f"d_max must be a non-negative int, got {d_max!r}")
    return d_max


def exhaustive_search(cost: CostFunction, d_max: int) -> OptimizationResult:
    """Evaluate every threshold in ``0..d_max`` and return the best.

    Ties are broken toward the *smaller* threshold, matching the paper's
    tables (a smaller residing area at equal cost means less paging
    latency exposure).
    """
    d_max = _validate_bound(d_max)
    memo = _MemoizedCost(cost)
    best_d = 0
    best_cost = math.inf
    for d in range(d_max + 1):
        value = memo(d)
        if value < best_cost - 1e-15:
            best_cost = value
            best_d = d
    return OptimizationResult(
        optimal_threshold=best_d,
        optimal_cost=best_cost,
        evaluations=memo.evaluations,
        method="exhaustive",
        curve=dict(memo.cache),
    )


def simulated_annealing(
    cost: CostFunction,
    d_max: int,
    seed: int = 0,
    y: float = 8.0,
    exit_temperature: float = 0.05,
    neighborhood: int = 3,
) -> OptimizationResult:
    """The paper's simulated-annealing threshold search (Section 6).

    Follows the pseudo-code: start from a random threshold, propose a
    neighbor ``d'`` of the current ``d``, compute
    ``delta = cost(d) - cost(d')``, accept improvements outright and
    regressions with probability ``exp(delta / T)`` (``delta < 0``),
    and cool with ``T = y / (y + k)`` until ``T <= exit_temperature``.

    Parameters
    ----------
    seed:
        Seeds the private RNG; runs are fully deterministic per seed.
    y, exit_temperature:
        The paper's accuracy knobs: larger ``y`` and smaller
        ``exit_temperature`` mean more iterations.
    neighborhood:
        ``generate(d)`` proposes uniformly from
        ``[d - neighborhood, d + neighborhood]`` clipped to ``[0, d_max]``
        and excluding ``d`` itself.
    """
    d_max = _validate_bound(d_max)
    if y <= 0 or exit_temperature <= 0 or exit_temperature >= 1:
        raise ParameterError(
            f"need y > 0 and 0 < exit_temperature < 1, got y={y}, "
            f"exit_temperature={exit_temperature}"
        )
    if neighborhood < 1:
        raise ParameterError(f"neighborhood must be >= 1, got {neighborhood}")
    rng = random.Random(seed)
    memo = _MemoizedCost(cost)

    current = rng.randint(0, d_max)  # Random_Init()
    best = current
    temperature = 1.0
    k = 1
    while temperature > exit_temperature:
        proposal = _generate_neighbor(rng, current, d_max, neighborhood)
        delta = memo(current) - memo(proposal)
        if delta >= 0 or rng.random() < math.exp(delta / temperature):
            current = proposal
        if memo(current) < memo(best):
            best = current
        temperature = y / (y + k)
        k += 1
    # Report the best threshold *seen*, not merely the final state: the
    # chain may end on an uphill excursion at low temperature.
    for d, value in memo.cache.items():
        if value < memo.cache[best] - 1e-15 or (
            abs(value - memo.cache[best]) <= 1e-15 and d < best
        ):
            best = d
    return OptimizationResult(
        optimal_threshold=best,
        optimal_cost=memo.cache[best],
        evaluations=memo.evaluations,
        method="simulated-annealing",
        curve=dict(memo.cache),
    )


def _generate_neighbor(
    rng: random.Random, d: int, d_max: int, spread: int
) -> int:
    """The paper's ``generate(d)``: a random threshold near ``d``."""
    if d_max == 0:
        return 0
    lo = max(0, d - spread)
    hi = min(d_max, d + spread)
    candidates: List[int] = [x for x in range(lo, hi + 1) if x != d]
    if not candidates:  # pragma: no cover - only if spread clipped to nothing
        return d
    return rng.choice(candidates)


def hill_climb(
    cost: CostFunction, d_max: int, start: int = 0
) -> OptimizationResult:
    """Greedy descent baseline: move to the better adjacent threshold.

    Stops at the first local minimum.  Included to demonstrate the
    paper's observation that the cost curve "may have local minimum"
    and gradient descent is unsafe; the optimizer ablation bench counts
    how often this diverges from :func:`exhaustive_search`.
    """
    d_max = _validate_bound(d_max)
    if not 0 <= start <= d_max:
        raise ParameterError(f"start must be in [0, {d_max}], got {start}")
    memo = _MemoizedCost(cost)
    current = start
    while True:
        here = memo(current)
        candidates = [d for d in (current - 1, current + 1) if 0 <= d <= d_max]
        values = {d: memo(d) for d in candidates}
        best_neighbor = min(values, key=lambda d: (values[d], d))
        if values[best_neighbor] < here - 1e-15:
            current = best_neighbor
            continue
        return OptimizationResult(
            optimal_threshold=current,
            optimal_cost=here,
            evaluations=memo.evaluations,
            method="hill-climb",
            curve=dict(memo.cache),
        )
