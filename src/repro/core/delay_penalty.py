"""Joint threshold/partition optimization under a *soft* delay cost.

The paper treats paging delay as a hard bound ``m``.  Real systems
often price delay instead: every extra polling cycle postpones call
setup, which has a cost but not an absolute ceiling.  This extension
replaces the bound with a penalty ``w`` per polling cycle per call and
minimizes

    C(d, plan) = C_u(d) + c * [ V * E[cells polled] + w * E[cycles] ]

jointly over the threshold *and* the partition, with no constraint on
the subarea count -- the penalty itself limits how finely paging is
staged.

The partition subproblem stays a clean dynamic program because both
terms telescope over groups: a group starting at ring ``s`` costs
``tail_p(s) * (V * N(group) + w)`` (every terminal not yet found pays
the group's cells *and* one more cycle), so the optimal unconstrained
partition for threshold ``d`` is an O(d^2) DP.  As ``w -> 0`` the
solution approaches per-ring polling; as ``w -> inf`` it approaches
blanket polling -- both limits are tested.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..paging.plan import PagingPlan, partition_from_sizes
from .models import MobilityModel
from .parameters import CostParams, validate_threshold

__all__ = ["SoftDelayPolicy", "optimal_soft_delay_partition", "optimize_soft_delay"]


@dataclass(frozen=True)
class SoftDelayPolicy:
    """A jointly optimized operating point under a delay penalty."""

    threshold: int
    plan: PagingPlan
    update_cost: float
    paging_cell_cost: float
    delay_cost: float
    expected_delay: float

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cell_cost + self.delay_cost


def optimal_soft_delay_partition(
    ring_probabilities,
    ring_sizes,
    poll_cost: float,
    delay_penalty: float,
) -> Tuple[PagingPlan, float, float]:
    """Unconstrained-group DP for the soft-delay partition.

    Returns ``(plan, expected_cells, expected_cycles)`` minimizing
    ``poll_cost * E[cells] + delay_penalty * E[cycles]``.
    """
    if poll_cost < 0 or delay_penalty < 0:
        raise ParameterError(
            f"costs must be >= 0, got V={poll_cost}, penalty={delay_penalty}"
        )
    p = np.asarray(ring_probabilities, dtype=float)
    n = np.asarray(ring_sizes, dtype=float)
    if p.shape != n.shape or p.ndim != 1 or p.size == 0:
        raise ParameterError("probabilities and sizes must be equal-length 1-D")
    size = p.size
    tail_p = np.concatenate([np.cumsum(p[::-1])[::-1], [0.0]])
    pref_n = np.concatenate([[0.0], np.cumsum(n)])
    best = [math.inf] * (size + 1)
    choice = [-1] * (size + 1)
    best[size] = 0.0
    for s in range(size - 1, -1, -1):
        acc, pick = math.inf, -1
        for e in range(s, size):
            cost = (
                tail_p[s]
                * (poll_cost * (pref_n[e + 1] - pref_n[s]) + delay_penalty)
                + best[e + 1]
            )
            if cost < acc - 1e-15:
                acc, pick = cost, e
        best[s] = acc
        choice[s] = pick
    sizes: List[int] = []
    s = 0
    while s < size:
        e = choice[s]
        sizes.append(e - s + 1)
        s = e + 1
    plan = partition_from_sizes(size - 1, sizes)
    # Recover the two expectations separately for reporting.
    alpha = plan.subarea_probabilities(p)
    w = np.cumsum([n[list(group)].sum() for group in plan.subareas])
    expected_cells = float(alpha @ w)
    expected_cycles = float(alpha @ np.arange(1, len(alpha) + 1))
    return plan, expected_cells, expected_cycles


def optimize_soft_delay(
    model: MobilityModel,
    costs: CostParams,
    delay_penalty: float,
    d_max: int = 100,
    convention: str = "paper",
) -> SoftDelayPolicy:
    """Jointly optimal ``(d, plan)`` under the per-cycle delay penalty."""
    d_max = validate_threshold(d_max)
    if delay_penalty < 0:
        raise ParameterError(f"delay_penalty must be >= 0, got {delay_penalty}")
    topo = model.topology
    c = model.c
    U = costs.update_cost
    V = costs.poll_cost
    best: SoftDelayPolicy = None  # type: ignore[assignment]
    for d in range(d_max + 1):
        p = model.steady_state(d)
        sizes = [topo.ring_size(i) for i in range(d + 1)]
        plan, cells, cycles = optimal_soft_delay_partition(
            p, sizes, poll_cost=V, delay_penalty=delay_penalty
        )
        update = float(p[d]) * model.update_rate(d, convention=convention) * U
        policy = SoftDelayPolicy(
            threshold=d,
            plan=plan,
            update_cost=update,
            paging_cell_cost=c * V * cells,
            delay_cost=c * delay_penalty * cycles,
            expected_delay=cycles,
        )
        if best is None or policy.total_cost < best.total_cost - 1e-15:
            best = policy
    return best
