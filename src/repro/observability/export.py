"""Exporters and run provenance for observability artifacts.

One *artifact* is everything a measured run produced: a provenance
header (what ran, with which parameters, on which code), the metric
series, and the trace spans.  Three output forms:

* **JSON lines** (:func:`write_artifact` / :func:`read_artifact`): one
  self-describing record per line (``kind`` is ``provenance`` /
  ``metric`` / ``span``), the storage format the CLI's
  ``--metrics-out`` writes and ``repro-lm metrics summarize`` reads;
* **Prometheus-style text** (:func:`prometheus_text`): ``# TYPE``
  headers plus ``name{label="value"} value`` samples, for scraping the
  registry into standard tooling;
* **human summary** (:func:`summarize_artifact`): rendered tables of
  the provenance, metrics, and span aggregates.

Every artifact is provenance-stamped: schema version, the command that
produced it, a SHA-256 fingerprint of its parameters, the seed, the git
revision of the working tree, and the library version -- enough to know
exactly what a saved metrics file describes (or to refuse to compare
incomparable ones).
"""

from __future__ import annotations

import hashlib
import json
import math
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import ParameterError
from .context import Observability
from .tracing import SpanRecord

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "build_provenance",
    "params_fingerprint",
    "git_revision",
    "write_artifact",
    "read_artifact",
    "prometheus_text",
    "summarize_artifact",
]

#: Bump when the artifact record layout changes incompatibly.
ARTIFACT_SCHEMA_VERSION = 1


def _json_safe(value):
    """Make one parameter value JSON-encodable (inf/-inf -> strings)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def params_fingerprint(params: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a parameter mapping."""
    canonical = json.dumps(
        {str(k): _json_safe(v) for k, v in sorted(params.items())},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(repo_root: Optional[Union[str, Path]] = None) -> str:
    """The working tree's HEAD revision, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip()


def build_provenance(
    command: str,
    params: Dict[str, object],
    seed: Optional[int] = None,
) -> dict:
    """The stamp attached to every exported artifact."""
    import repro  # deferred: keep this module import-light

    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "command": command,
        "params": {str(k): _json_safe(v) for k, v in sorted(params.items())},
        "params_fingerprint": params_fingerprint(params),
        "seed": seed,
        "git_rev": git_revision(Path(repro.__file__).resolve().parent),
        "library_version": getattr(repro, "__version__", "unknown"),
        "created_unix": time.time(),
    }


# ----------------------------------------------------------------------
# JSON-lines artifact


def write_artifact(
    path: Union[str, Path],
    obs: Observability,
    provenance: dict,
    checks: Optional[List[dict]] = None,
    extra_records: Optional[List[dict]] = None,
) -> Path:
    """Write one observability artifact as JSON lines.

    Line 1 is the provenance record; every metric series and span
    follows as its own line, so artifacts stream and concatenate
    cleanly.  ``checks`` appends ``kind="check"`` records -- one per
    conformance check result -- which is how ``repro-lm conformance
    --report`` shares this format.  ``extra_records`` appends
    domain-specific records verbatim; each must carry its own ``kind``
    that :func:`read_artifact` knows (currently ``"approximation"``,
    written by ``repro-lm approx --report``).
    """
    path = Path(path)
    lines = [json.dumps({"kind": "provenance", **provenance}, sort_keys=True)]
    for record in obs.registry.collect():
        lines.append(json.dumps({"kind": "metric", **record}, sort_keys=True))
    for span in obs.tracer.records:
        lines.append(json.dumps({"kind": "span", **span.to_dict()}, sort_keys=True))
    for record in checks or ():
        lines.append(json.dumps({"kind": "check", **record}, sort_keys=True))
    for record in extra_records or ():
        if "kind" not in record:
            raise ParameterError(
                f"extra_records entries must carry a 'kind' field, got {record!r}"
            )
        lines.append(json.dumps(record, sort_keys=True))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_artifact(path: Union[str, Path]) -> dict:
    """Parse an artifact back into ``{provenance, metrics, spans, checks}``.

    Raises :class:`~repro.exceptions.ParameterError` on malformed files
    or a schema version this library does not read.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ParameterError(f"unreadable metrics artifact {path}: {exc}") from exc
    provenance: Optional[dict] = None
    metrics: List[dict] = []
    spans: List[SpanRecord] = []
    checks: List[dict] = []
    approximations: List[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ParameterError(
                f"metrics artifact {path} line {lineno} is not JSON: {exc}"
            ) from exc
        kind = record.pop("kind", None)
        if kind == "provenance":
            provenance = record
        elif kind == "metric":
            metrics.append(record)
        elif kind == "span":
            spans.append(SpanRecord.from_dict(record))
        elif kind == "check":
            checks.append(record)
        elif kind == "approximation":
            approximations.append(record)
        else:
            raise ParameterError(
                f"metrics artifact {path} line {lineno} has unknown kind {kind!r}"
            )
    if provenance is None:
        raise ParameterError(
            f"metrics artifact {path} has no provenance record; was it "
            "produced by repro-lm --metrics-out?"
        )
    version = provenance.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        raise ParameterError(
            f"metrics artifact {path} uses schema version {version!r}; this "
            f"library reads version {ARTIFACT_SCHEMA_VERSION} -- regenerate "
            "the artifact with the current CLI"
        )
    return {
        "provenance": provenance,
        "metrics": metrics,
        "spans": spans,
        "checks": checks,
        "approximations": approximations,
    }


# ----------------------------------------------------------------------
# Prometheus-style text


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(metrics: Union[Observability, List[dict]]) -> str:
    """Render metric records in the Prometheus exposition format.

    Histograms expose ``_count`` and ``_sum`` plus one cumulative
    ``_bucket`` sample per observed integer value (``le`` label), the
    standard shape scrapers expect.
    """
    if isinstance(metrics, Observability):
        records = metrics.registry.collect()
    else:
        records = list(metrics)
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for record in records:
        name = record["name"]
        kind = record.get("type", "counter")
        if name not in seen_types:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        labels = record.get("labels", {})
        if kind == "histogram":
            cumulative = 0
            for bucket, count in sorted(
                record.get("counts", {}).items(), key=lambda kv: int(kv[0])
            ):
                cumulative += int(count)
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels({**labels, 'le': bucket})} {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels({**labels, 'le': '+Inf'})} {cumulative}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {record.get('sum', 0.0)}")
            lines.append(
                f"{name}_count{_prom_labels(labels)} {record.get('count', 0)}"
            )
        else:
            lines.append(f"{name}{_prom_labels(labels)} {record['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human summary


def _format_labels(labels: Dict[str, str]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def summarize_artifact(artifact: dict) -> str:
    """Render an artifact (from :func:`read_artifact`) as human tables."""
    from ..analysis.report import render_table  # deferred: avoid import cycle

    provenance = artifact["provenance"]
    blocks: List[str] = []
    prov_rows = [
        ["command", provenance.get("command", "?")],
        ["params fingerprint", str(provenance.get("params_fingerprint", "?"))[:16]],
        ["seed", provenance.get("seed")],
        ["git rev", str(provenance.get("git_rev", "?"))[:12]],
        ["library", provenance.get("library_version", "?")],
        ["schema", provenance.get("schema_version", "?")],
    ]
    blocks.append(render_table(["field", "value"], prov_rows, title="Provenance"))

    metric_rows: List[List[object]] = []
    for record in artifact["metrics"]:
        if record.get("type") == "histogram":
            count = record.get("count", 0)
            mean = (record.get("sum", 0.0) / count) if count else 0.0
            value = f"n={count} mean={mean:.3f}"
        else:
            value = record.get("value")
        metric_rows.append(
            [record["name"], _format_labels(record.get("labels", {})), value]
        )
    if metric_rows:
        blocks.append(
            render_table(["metric", "labels", "value"], metric_rows, title="Metrics")
        )

    span_totals: Dict[str, List[float]] = {}
    for span in artifact["spans"]:
        if span.duration is None:
            continue
        span_totals.setdefault(span.name, []).append(span.duration)
    if span_totals:
        span_rows = [
            [name, len(durations), sum(durations), sum(durations) / len(durations)]
            for name, durations in sorted(
                span_totals.items(), key=lambda kv: -sum(kv[1])
            )
        ]
        blocks.append(
            render_table(
                ["span", "count", "total s", "mean s"],
                span_rows,
                title="Trace spans",
            )
        )
    return "\n\n".join(blocks)
