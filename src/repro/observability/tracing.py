"""Lightweight tracing spans with monotonic timings.

A span is one timed region of work -- a replication, a batched solve, a
grid sweep -- with a name, optional metadata, and a parent (spans nest
through a context-manager stack).  Records are plain picklable
dataclasses so pooled workers can ship their spans back to the parent
process, where :meth:`Tracer.adopt` re-roots them under the caller's
active span (the mechanism ``run_replicated(workers=N)`` uses to show
one coherent trace for a fan-out campaign).

Two entry points::

    with tracer.span("solve", d_max=100):        # context manager
        ...

    @traced("analysis.grid_sweep")               # decorator
    def grid_sweep(...): ...

The decorator resolves the *current* tracer at call time, so decorated
library functions are no-ops until a session is installed (see
:mod:`repro.observability.context`).

Profiling hooks (:class:`~repro.observability.profiling.ProfileHook`)
attach to a tracer and get span start/finish callbacks, which is how
benchmarks bolt cProfile or timer sinks onto instrumented code without
touching it.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SpanRecord", "Tracer", "NullTracer", "NULL_TRACER", "traced"]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span; picklable across processes."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    duration: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=int(payload["span_id"]),
            parent_id=(
                None if payload.get("parent_id") is None
                else int(payload["parent_id"])
            ),
            start=float(payload["start"]),
            duration=(
                None if payload.get("duration") is None
                else float(payload["duration"])
            ),
            metadata=dict(payload.get("metadata", {})),
        )


class Tracer:
    """Collects nested spans with ``time.perf_counter`` timings."""

    enabled = True

    def __init__(self, hooks: Iterable = ()) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._next_id = 1
        self.hooks = list(hooks)

    @contextmanager
    def span(self, name: str, **metadata):
        """Open a nested span; yields its mutable :class:`SpanRecord`."""
        record = SpanRecord(
            name=name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            start=time.perf_counter(),
            metadata=metadata,
        )
        self._next_id += 1
        self.records.append(record)
        self._stack.append(record.span_id)
        for hook in self.hooks:
            hook.on_span_start(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.duration = time.perf_counter() - record.start
            for hook in self.hooks:
                hook.on_span_finish(record)

    def adopt(self, records: Iterable[SpanRecord], **extra_metadata) -> None:
        """Graft foreign spans (e.g. a pooled worker's) into this trace.

        Span ids are re-assigned to stay unique; the foreign roots are
        re-parented under the currently open span so a fan-out campaign
        reads as one tree.  ``extra_metadata`` is stamped onto the
        adopted roots (typically the replication index).
        """
        records = list(records)
        id_map: Dict[int, int] = {}
        for record in records:
            id_map[record.span_id] = self._next_id
            self._next_id += 1
        current_parent = self._stack[-1] if self._stack else None
        for record in records:
            is_root = record.parent_id not in id_map
            self.records.append(
                SpanRecord(
                    name=record.name,
                    span_id=id_map[record.span_id],
                    parent_id=(
                        current_parent if is_root else id_map[record.parent_id]
                    ),
                    start=record.start,
                    duration=record.duration,
                    metadata=(
                        {**record.metadata, **extra_metadata}
                        if is_root
                        else dict(record.metadata)
                    ),
                )
            )

    def add_hook(self, hook) -> None:
        self.hooks.append(hook)

    def summary(self) -> List[Tuple[str, int, float, float]]:
        """Aggregated ``(name, count, total_s, mean_s)`` rows by span name."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in self.records:
            if record.duration is None:
                continue
            count, total = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, total + record.duration)
        return [
            (name, count, total, total / count)
            for name, (count, total) in sorted(
                totals.items(), key=lambda kv: -kv[1][1]
            )
        ]

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Tracer({len(self.records)} spans)"


class _NullSpan:
    """Reusable no-op context manager with a writable metadata dict."""

    __slots__ = ("metadata",)

    def __init__(self) -> None:
        self.metadata: Dict[str, object] = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default tracer: spans are shared no-ops."""

    enabled = False

    records: List[SpanRecord] = []
    hooks: List = []

    def span(self, name: str, **metadata) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, records: Iterable[SpanRecord], **extra_metadata) -> None:
        pass

    def add_hook(self, hook) -> None:
        pass

    def summary(self) -> List[Tuple[str, int, float, float]]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled default.
NULL_TRACER = NullTracer()


def traced(name: Optional[str] = None, **metadata):
    """Decorator: run the wrapped function inside a span.

    The span is opened on the tracer active *at call time* -- with no
    session installed this costs one global read and a no-op context
    manager, nothing else.
    """

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            from .context import current  # deferred: avoid import cycle

            tracer = current().tracer
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, **metadata):
                return func(*args, **kwargs)

        return wrapper

    return decorate
