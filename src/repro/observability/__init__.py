"""Unified observability: metrics registry, tracing spans, profiling hooks.

The cross-cutting measurement layer for the whole library.  One
process-wide context (:func:`current`) holds a
:class:`MetricsRegistry` and a :class:`Tracer`; instrumentation sites
in the simulation engines, the fault-injection layer, the analytic
solvers, and the sweep cache all report into it.  By default the
context is disabled and every site is a no-op (the overhead guard in
``benchmarks/bench_throughput.py`` holds it under 2%); installing a
:func:`session` turns collection on for a block::

    from repro.observability import session
    from repro.observability.export import build_provenance, write_artifact

    with session() as obs:
        result = run_replicated(...)
        write_artifact("m.json", obs, build_provenance("my-run", params, seed=0))

Collected data exports as JSON lines, Prometheus text, or a human
summary (:mod:`repro.observability.export`); benchmarks can attach
:class:`ProfileHook` sinks (cProfile, wall-clock timers) without
touching instrumented code.  The CLI front door is
``repro-lm simulate/sweep/speed --metrics-out PATH --trace`` plus
``repro-lm metrics summarize PATH``.

Instrumentation never draws randomness and never feeds back into the
computation, so enabling it is guaranteed not to change any simulated
or analytic number -- the bit-identity tests in
``tests/observability/`` pin this down.
"""

from .context import DISABLED, Observability, current, noop_session, session
from .export import (
    ARTIFACT_SCHEMA_VERSION,
    build_provenance,
    git_revision,
    params_fingerprint,
    prometheus_text,
    read_artifact,
    summarize_artifact,
    write_artifact,
)
from .profiling import CProfileHook, ProfileHook, TimerHook
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, SpanRecord, Tracer, traced

__all__ = [
    "Observability",
    "current",
    "session",
    "noop_session",
    "DISABLED",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "traced",
    "ProfileHook",
    "TimerHook",
    "CProfileHook",
    "ARTIFACT_SCHEMA_VERSION",
    "build_provenance",
    "params_fingerprint",
    "git_revision",
    "write_artifact",
    "read_artifact",
    "prometheus_text",
    "summarize_artifact",
]
