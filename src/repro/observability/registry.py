"""Process-wide metrics registry: counters, gauges, and histograms.

The registry is the accounting half of the observability layer (the
tracing half lives in :mod:`repro.observability.tracing`).  Metrics are
*labeled series*: one logical name plus a frozen set of key/value
labels identifies one instrument, e.g.::

    registry.counter("updates_total", strategy="distance", d=3).inc()
    registry.histogram("paging_delay_cycles").observe(cycles)

Design constraints, in priority order:

1. **Zero cost when disabled.**  The default process-wide registry is
   a :class:`NullRegistry` whose instruments are shared no-op
   singletons; instrumented code either skips instrument creation
   entirely (the hot simulation engines check
   ``observability.current().enabled`` once at construction) or calls
   no-op methods that do nothing.
2. **Exact accounting.**  Counters accumulate plain Python floats in
   call order, so a metric fed once per replication in index order is
   bit-for-bit equal to the same sum taken over the snapshots -- the
   invariant the metrics property test asserts against
   :class:`~repro.simulation.metrics.CostMeter`.
3. **Picklable snapshots.**  :meth:`MetricsRegistry.collect` returns
   plain dicts so pooled workers can ship their registries back to the
   parent, which merges them deterministically (see
   :meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Dict, Iterable, List, Optional, Tuple

from ..exceptions import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]

#: A labeled-series key: (name, ((label, value), ...)) with labels sorted.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, object]) -> SeriesKey:
    if not name or not isinstance(name, str):
        raise ParameterError(f"metric name must be a non-empty string, got {name!r}")
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing sum (event counts, accumulated cost)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(f"counters only go up; got inc({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down (last-write-wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """An integer-bucketed distribution (e.g. paging delay in cycles).

    Buckets are exact observed values, not ranges -- the quantities this
    library histograms (polling cycles, ring distances, retry counts)
    are small integers, so exact buckets lose nothing and merge
    losslessly across processes.
    """

    __slots__ = ("counts", "sum")
    kind = "histogram"

    def __init__(self) -> None:
        self.counts: _TallyCounter = _TallyCounter()
        self.sum = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        self.counts[int(value)] += count
        self.sum += value * count

    @property
    def count(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        n = self.count
        return self.sum / n if n else 0.0


class NullCounter:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()
    kind = "null"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, count: int = 1) -> None:
        pass


_NULL_INSTRUMENT = NullCounter()


class MetricsRegistry:
    """A collection of labeled instruments, created on first use.

    Instruments are held per ``(name, labels)`` series; asking twice for
    the same series returns the same object, so hot paths can resolve a
    handle once and increment it thereafter without any lookup cost.
    """

    enabled = True

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, object] = {}

    # -- instrument accessors ------------------------------------------

    def _get(self, factory, name: str, labels: Dict[str, object]):
        key = _series_key(name, labels)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = factory()
            self._series[key] = instrument
        elif not isinstance(instrument, (NullCounter,)) and type(
            instrument
        ) is not factory:
            raise ParameterError(
                f"metric {name!r} with labels {dict(key[1])} already registered "
                f"as a {instrument.kind}, not a {factory.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- snapshot / merge ----------------------------------------------

    def collect(self) -> List[dict]:
        """All series as plain picklable dicts, sorted by (name, labels)."""
        records = []
        for (name, labels), instrument in sorted(self._series.items()):
            record = {"name": name, "labels": dict(labels), "type": instrument.kind}
            if isinstance(instrument, Histogram):
                record["counts"] = {
                    str(k): int(v) for k, v in sorted(instrument.counts.items())
                }
                record["sum"] = instrument.sum
                record["count"] = instrument.count
            else:
                record["value"] = instrument.value
            records.append(record)
        return records

    def merge(self, records: Iterable[dict]) -> None:
        """Fold collected records (e.g. from a pooled worker) into this
        registry.

        Counters and histograms add; gauges take the incoming value
        (last write wins).  Merging is sequential and therefore
        deterministic for a deterministic record order -- callers that
        need exact float reproducibility (serial vs pooled runs) must
        merge worker payloads in a canonical order, which
        :func:`repro.simulation.runner.run_replicated` does by
        replication index.
        """
        for record in records:
            name = record["name"]
            labels = record.get("labels", {})
            kind = record.get("type", "counter")
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                self.gauge(name, **labels).set(record["value"])
            elif kind == "histogram":
                histogram = self.histogram(name, **labels)
                for bucket, count in record.get("counts", {}).items():
                    histogram.counts[int(bucket)] += int(count)
                histogram.sum += record.get("sum", 0.0)
            else:
                raise ParameterError(f"unknown metric record type {kind!r}")

    def value(self, name: str, **labels) -> Optional[float]:
        """The current value of one series, or None if never touched."""
        instrument = self._series.get(_series_key(name, labels))
        if instrument is None:
            return None
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return instrument.value

    def total(self, name: str) -> float:
        """Sum of one metric name across all label series."""
        total = 0.0
        for (series_name, _), instrument in self._series.items():
            if series_name != name:
                continue
            if isinstance(instrument, Histogram):
                total += instrument.count
            else:
                total += instrument.value
        return total

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._series)} series)"


class NullRegistry:
    """The zero-cost default: every accessor returns a shared no-op.

    ``enabled`` distinguishes the two uses: the process default is
    ``NullRegistry(enabled=False)`` (instrumented code skips handle
    creation entirely), while the overhead bench installs
    ``NullRegistry(enabled=True)`` to exercise every instrument call
    against no-op sinks.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled

    def counter(self, name: str, **labels) -> NullCounter:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> NullCounter:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels) -> NullCounter:
        return _NULL_INSTRUMENT

    def collect(self) -> List[dict]:
        return []

    def merge(self, records: Iterable[dict]) -> None:
        pass

    def value(self, name: str, **labels) -> None:
        return None

    def total(self, name: str) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"NullRegistry(enabled={self.enabled})"


#: The process-wide disabled default.
NULL_REGISTRY = NullRegistry(enabled=False)
