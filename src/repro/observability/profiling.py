"""Profiling hooks: attach profilers to traced code without code changes.

A :class:`ProfileHook` receives span start/finish callbacks from a
:class:`~repro.observability.tracing.Tracer`.  Benchmarks attach hooks
via ``session(profile_hooks=[...])`` and the instrumented library runs
under them unmodified -- the hook decides what to do with the span
boundaries:

* :class:`TimerHook` accumulates wall-clock per span name (a cheap
  always-on profile);
* :class:`CProfileHook` runs :mod:`cProfile` across the outermost span
  and exposes the stats, for when a bench needs function-level detail.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Dict, Optional, Protocol, runtime_checkable

from .tracing import SpanRecord

__all__ = ["ProfileHook", "TimerHook", "CProfileHook"]


@runtime_checkable
class ProfileHook(Protocol):
    """The contract profiling sinks implement."""

    def on_span_start(self, record: SpanRecord) -> None:
        """Called when a span opens (duration not yet known)."""

    def on_span_finish(self, record: SpanRecord) -> None:
        """Called when a span closes (``record.duration`` is set)."""


class TimerHook:
    """Accumulates span wall-clock by name: ``{name: (count, total_s)}``."""

    def __init__(self) -> None:
        self.totals: Dict[str, tuple] = {}

    def on_span_start(self, record: SpanRecord) -> None:
        pass

    def on_span_finish(self, record: SpanRecord) -> None:
        count, total = self.totals.get(record.name, (0, 0.0))
        self.totals[record.name] = (count + 1, total + (record.duration or 0.0))


class CProfileHook:
    """Profiles everything between the first span start and the last
    span finish with :mod:`cProfile`.

    Only the outermost span toggles the profiler (cProfile does not
    nest), so arbitrarily nested instrumented code profiles cleanly.
    """

    def __init__(self) -> None:
        self.profile = cProfile.Profile()
        self._depth = 0

    def on_span_start(self, record: SpanRecord) -> None:
        if self._depth == 0:
            self.profile.enable()
        self._depth += 1

    def on_span_finish(self, record: SpanRecord) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.profile.disable()

    def stats_text(self, top: int = 20, sort: str = "cumulative") -> str:
        """The profile as ``pstats`` text (top ``top`` rows)."""
        buffer = io.StringIO()
        stats = pstats.Stats(self.profile, stream=buffer)
        stats.sort_stats(sort).print_stats(top)
        return buffer.getvalue()
