"""The process-wide observability context: one registry + one tracer.

The library's instrumentation sites all read the *current* context via
:func:`current`; by default it is :data:`DISABLED` (a null registry and
a null tracer), which makes every instrumentation site either skip its
work entirely (hot engines check ``current().enabled`` once at
construction) or call shared no-op instruments.

A measurement is taken by installing a session::

    from repro.observability import session

    with session() as obs:
        run_replicated(...)
        print(obs.registry.total("updates_total"))

Sessions nest: ``run_replicated``'s worker path opens a fresh session
inside each (possibly remote) replication and ships the collected
records back to the parent, which merges them.  The context is a plain
module global -- the library is single-threaded per process by design
(parallelism is process-based), so no thread-local indirection is paid
on the hot path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, List, Union

from .registry import NULL_REGISTRY, MetricsRegistry, NullRegistry
from .tracing import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "Observability",
    "current",
    "session",
    "noop_session",
    "DISABLED",
]


@dataclass
class Observability:
    """One observability context: a metrics registry plus a tracer."""

    registry: Union[MetricsRegistry, NullRegistry] = field(
        default_factory=lambda: NULL_REGISTRY
    )
    tracer: Union[Tracer, NullTracer] = field(default_factory=lambda: NULL_TRACER)

    @property
    def enabled(self) -> bool:
        """True when any instrumentation sink is live (or no-op-armed)."""
        return self.registry.enabled or self.tracer.enabled

    def collect_payload(self) -> dict:
        """Picklable snapshot of everything this context collected.

        The shape pooled workers ship back to their parent: metric
        records plus span record dicts.
        """
        return {
            "metrics": self.registry.collect(),
            "spans": [record.to_dict() for record in self.tracer.records],
        }

    def merge_payload(self, payload: dict, **root_metadata) -> None:
        """Fold a worker's collected payload into this context."""
        self.registry.merge(payload.get("metrics", ()))
        spans: List[SpanRecord] = [
            SpanRecord.from_dict(entry) for entry in payload.get("spans", ())
        ]
        if spans:
            self.tracer.adopt(spans, **root_metadata)


#: The default context: all sinks off, all instruments no-ops.
DISABLED = Observability()

_current: Observability = DISABLED


def current() -> Observability:
    """The active observability context (:data:`DISABLED` by default)."""
    return _current


@contextmanager
def session(metrics: bool = True, trace: bool = True, profile_hooks: Iterable = ()):
    """Install a fresh collecting context for the duration of the block.

    ``metrics``/``trace`` select which sinks collect; profile hooks
    attach to the tracer (forcing it on -- hooks see span boundaries).
    The previous context is restored on exit, so sessions nest safely.
    """
    global _current
    hooks = list(profile_hooks)
    obs = Observability(
        registry=MetricsRegistry() if metrics else NULL_REGISTRY,
        tracer=Tracer(hooks=hooks) if (trace or hooks) else NULL_TRACER,
    )
    previous = _current
    _current = obs
    try:
        yield obs
    finally:
        _current = previous


@contextmanager
def noop_session():
    """Install an *armed* null context: instrumentation sites run their
    full handle-resolution and increment calls against no-op sinks.

    This exists for the overhead bench: it measures the worst-case cost
    of the instrumentation itself (every call made, nothing recorded),
    which is the bound the <2%-overhead guard asserts.
    """
    global _current
    obs = Observability(registry=NullRegistry(enabled=True), tracer=NULL_TRACER)
    previous = _current
    _current = obs
    try:
        yield obs
    finally:
        _current = previous
