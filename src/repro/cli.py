"""Command-line interface: ``repro-lm`` / ``python -m repro``.

Subcommands map one-to-one onto the paper's experiments plus the
library's own validation tooling::

    repro-lm table1                 # reproduce Table 1 (1-D)
    repro-lm table2                 # reproduce Table 2 (2-D + near-opt)
    repro-lm fig4 --dimensions 2    # Figure 4(b) series + ASCII plot
    repro-lm fig5 --dimensions 1    # Figure 5(a)
    repro-lm optimize --q 0.05 --c 0.01 --update-cost 100 \\
             --poll-cost 10 --max-delay 3 --model 2d-exact
    repro-lm sweep --model 2d-exact --vary U=20,50,100,300 \\
             --vary m=1,3,inf --workers 4      # cached grid sweep
    repro-lm simulate --q 0.05 --c 0.01 --threshold 3 --slots 100000 \\
             --workers 4            # replications on a process pool
    repro-lm validate               # simulation-vs-model campaign
    repro-lm speed                  # engine vs vectorized throughput
    repro-lm fleet --terminals 1000000 --shards 32 --workers 8 \\
             --checkpoint fleet.ckpt.json   # sharded heterogeneous fleet
    repro-lm faults --loss 0.2 --outage-rate 0.01   # resilience report

Every data-producing command accepts ``--csv PATH`` to also write the
rows as CSV.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    compute_figure4,
    compute_figure5,
    compute_table1,
    compute_table2,
    render_ascii_plot,
    render_table,
    run_validation_campaign,
    table1_rows,
    table2_rows,
    write_csv,
)
from .analysis.sweep import MODEL_CLASSES
from .conformance.sampling import ALL_MODELS, SUITES
from .core.parameters import CostParams, MobilityParams
from .mobility.ctrw import MOBILITY_PRESETS, mobility_preset
from .core.threshold import find_optimal_threshold
from .exceptions import ReproError
from .simulation.runner import run_replicated
from .strategies.distance import DistanceStrategy

__all__ = ["main", "build_parser"]


def _delay(value: str) -> float:
    if value in ("inf", "unbounded", "none"):
        return math.inf
    return int(value)


def _add_observability_flags(p: argparse.ArgumentParser) -> None:
    """``--metrics-out`` / ``--trace`` for instrumented subcommands."""
    p.add_argument(
        "--metrics-out", dest="metrics_out", metavar="PATH",
        help="write a provenance-stamped metrics/trace artifact (JSON "
        "lines) here; inspect it with 'repro-lm metrics summarize PATH'",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="collect tracing spans and print a span summary",
    )


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    """``--backend`` for subcommands with a compiled execution path."""
    from .core.backend import BACKENDS

    p.add_argument(
        "--backend", choices=BACKENDS, default="numpy",
        help="execution backend: 'numpy' (default, legacy RNG), 'numba' "
        "(compiled kernels, falls back to NumPy with a warning when numba "
        "is missing), or 'auto' (compiled when available, silent fallback)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-lm",
        description="Akyildiz & Ho '95 location update / paging reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2"):
        p = sub.add_parser(name, help=f"reproduce the paper's {name}")
        p.add_argument("--csv", help="also write the rows to this CSV path")

    for name in ("fig4", "fig5"):
        p = sub.add_parser(name, help=f"reproduce the paper's {name} curves")
        p.add_argument("--dimensions", type=int, choices=(1, 2), default=1)
        p.add_argument("--points", type=int, default=13, help="sweep resolution")
        p.add_argument("--csv", help="also write the series to this CSV path")
        p.add_argument("--no-plot", action="store_true", help="skip the ASCII plot")

    p = sub.add_parser("optimize", help="optimal threshold for one user")
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument("--q", type=float, required=True, help="move probability")
    p.add_argument("--c", type=float, required=True, help="call probability")
    p.add_argument("--update-cost", type=float, required=True, help="U")
    p.add_argument("--poll-cost", type=float, required=True, help="V")
    p.add_argument("--max-delay", type=_delay, default=1, help="m (int or 'inf')")
    p.add_argument("--d-max", type=int, default=100, help="search bound D")
    p.add_argument(
        "--method",
        choices=("exhaustive", "exhaustive-scalar", "annealing", "hill"),
        default="exhaustive",
    )

    p = sub.add_parser(
        "sweep",
        help="solve a Cartesian parameter grid (cached, optionally pooled)",
    )
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument(
        "--vary", action="append", required=True, metavar="PARAM=SPEC",
        help="axis to vary; PARAM is one of q/c/U/V/m, SPEC is either a "
        "comma list (e.g. 'U=20,50,100' or 'm=1,3,inf') or "
        "'start:stop:count[:log]' (e.g. 'q=0.01:0.4:10'); repeatable",
    )
    p.add_argument("--q", type=float, default=0.05, help="fixed move probability")
    p.add_argument("--c", type=float, default=0.01, help="fixed call probability")
    p.add_argument("--update-cost", type=float, default=100.0, help="fixed U")
    p.add_argument("--poll-cost", type=float, default=10.0, help="fixed V")
    p.add_argument("--max-delay", type=_delay, default=1, help="fixed m")
    p.add_argument("--d-max", type=int, default=100, help="search bound D")
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for grid points (1 = serial; results are "
        "identical either way)",
    )
    p.add_argument(
        "--cache-dir", default="benchmarks/out/cache",
        help="on-disk result cache directory (default: benchmarks/out/cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute without reading or writing the result cache",
    )
    p.add_argument("--csv", help="also write the grid points to this CSV path")
    _add_backend_flag(p)
    _add_observability_flags(p)

    p = sub.add_parser("simulate", help="simulate the distance-based scheme")
    p.add_argument("--dimensions", type=int, choices=(1, 2), default=2)
    p.add_argument("--q", type=float, required=True)
    p.add_argument("--c", type=float, required=True)
    p.add_argument("--update-cost", type=float, default=100.0)
    p.add_argument("--poll-cost", type=float, default=10.0)
    p.add_argument("--threshold", type=int, required=True, help="d")
    p.add_argument("--max-delay", type=_delay, default=1)
    p.add_argument("--slots", type=int, default=100_000)
    p.add_argument("--replications", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--warmup", type=int, default=0,
        help="slots discarded before metering (fresh-fix transient)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for replications (1 = serial; results are "
        "bit-identical either way)",
    )
    p.add_argument(
        "--mobility", choices=MOBILITY_PRESETS, default="uniform",
        help="mobility process: 'uniform' (the paper's walk, default) or a "
        "CTRW preset -- 'ctrw-exp' (geometric residence, degenerate with "
        "uniform), 'ctrw-fixed' (deterministic), 'ctrw-hyper' "
        "(hyperexponential), 'ctrw-pareto' (truncated-Pareto heavy tail), "
        "'ctrw-drift' (directional drift)",
    )
    p.add_argument(
        "--drift", type=float, default=0.4,
        help="drift weight for --mobility ctrw-drift (default 0.4)",
    )
    _add_backend_flag(p)
    _add_observability_flags(p)

    p = sub.add_parser(
        "approx",
        help="approximation-error report: analytic model vs simulated "
        "CTRW mobility truth",
    )
    p.add_argument("--q", type=float, default=0.2)
    p.add_argument("--c", type=float, default=0.02)
    p.add_argument("--update-cost", type=float, default=50.0)
    p.add_argument("--poll-cost", type=float, default=10.0)
    p.add_argument("--threshold", type=int, default=2, help="d")
    p.add_argument("--max-delay", type=int, default=2)
    p.add_argument("--slots", type=int, default=4000)
    p.add_argument("--terminals", type=int, default=256)
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--drift", type=float, default=0.4)
    p.add_argument(
        "--models", default=None,
        help="comma-separated subset of mobility models (default: all of "
        f"{', '.join(MOBILITY_PRESETS)})",
    )
    p.add_argument("--csv", help="also write the rows to this CSV path")
    p.add_argument(
        "--report", metavar="PATH",
        help="write the rows as a provenance-stamped JSONL artifact "
        "(kind='approximation' records)",
    )

    p = sub.add_parser("validate", help="simulation-vs-model campaign")
    p.add_argument("--slots", type=int, default=100_000)
    p.add_argument("--replications", type=int, default=3)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per campaign point (1 = serial)",
    )

    p = sub.add_parser(
        "speed",
        help="throughput bench: per-cell engine vs vectorized distance engine",
    )
    p.add_argument("--dimensions", type=int, choices=(1, 2), default=2)
    p.add_argument("--q", type=float, default=0.3)
    p.add_argument("--c", type=float, default=0.01)
    p.add_argument("--update-cost", type=float, default=100.0)
    p.add_argument("--poll-cost", type=float, default=10.0)
    p.add_argument("--threshold", type=int, default=3, help="d")
    p.add_argument("--max-delay", type=_delay, default=1)
    p.add_argument("--engine-slots", type=int, default=20_000,
                   help="slots for the per-cell engine timing")
    p.add_argument("--vector-slots", type=int, default=5_000,
                   help="slots for the vectorized engine timing")
    p.add_argument("--terminals", type=int, default=2048,
                   help="batch width K of the vectorized engine")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", dest="json_path",
                   help="also write the machine-readable report here")
    p.add_argument(
        "--compare-backends", action="store_true",
        help="time every available backend on the vectorized engine in one "
        "invocation and print a per-backend slots/sec table",
    )
    _add_backend_flag(p)
    _add_observability_flags(p)

    p = sub.add_parser(
        "fleet",
        help="sharded heterogeneous fleet simulation with streaming "
        "metric merges and fleet-granularity checkpoints",
    )
    p.add_argument("--terminals", type=int, default=100_000,
                   help="fleet size (population sampled from the default mix)")
    p.add_argument("--shards", type=int, default=8,
                   help="contiguous population shards (unit of parallelism "
                   "and checkpointing; totals are shard-layout invariant)")
    p.add_argument("--slots", type=int, default=200)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for shards (1 = serial; results "
                   "are bit-identical either way)")
    p.add_argument("--seed", type=int, default=0,
                   help="event-noise seed (the population seed is separate "
                   "and recorded in the checkpoint fingerprint)")
    p.add_argument("--population-seed", type=int, default=0,
                   help="population sampling seed")
    p.add_argument("--update-cost", type=float, default=50.0, help="U")
    p.add_argument("--poll-cost", type=float, default=2.0, help="V")
    p.add_argument("--max-delay", type=_delay, default=2, help="m (int or 'inf')")
    p.add_argument("--d-max", type=int, default=30,
                   help="per-profile threshold search bound")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="fleet checkpoint JSON, updated after every shard; "
                   "rerun with identical parameters to resume")
    p.add_argument("--json", dest="json_path",
                   help="also write the machine-readable report here")
    _add_backend_flag(p)
    _add_observability_flags(p)

    p = sub.add_parser(
        "faults",
        help="fault injection: cost/delay degradation vs the fault-free baseline",
    )
    p.add_argument("--dimensions", type=int, choices=(1, 2), default=2)
    p.add_argument("--q", type=float, default=0.2, help="move probability")
    p.add_argument("--c", type=float, default=0.02, help="call probability")
    p.add_argument("--update-cost", type=float, default=50.0)
    p.add_argument("--poll-cost", type=float, default=2.0)
    p.add_argument("--threshold", type=int, default=3, help="d")
    p.add_argument("--max-delay", type=_delay, default=2)
    p.add_argument("--slots", type=int, default=50_000)
    p.add_argument("--replications", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--loss", type=float, default=0.0, help="update-loss probability")
    p.add_argument("--page-loss", type=float, default=0.0, help="missed-poll probability")
    p.add_argument("--outage-rate", type=float, default=0.0,
                   help="per-tick base-station outage hazard")
    p.add_argument("--outage-duration", type=int, default=10,
                   help="outage length in ticks")
    p.add_argument("--register-failure-rate", type=float, default=0.0,
                   help="per-slot register failover hazard")
    p.add_argument("--failover-slots", type=int, default=20,
                   help="stale-read window after a register failure")
    p.add_argument("--retries", type=int, default=3,
                   help="max update retransmissions (each charged U)")
    p.add_argument("--backoff", type=float, default=2.0,
                   help="exponential backoff factor between retries")
    p.add_argument("--repages", type=int, default=1,
                   help="full re-pages before expanding-ring recovery")
    p.add_argument("--json", dest="json_path",
                   help="also write the machine-readable report here")

    p = sub.add_parser(
        "soft-delay",
        help="jointly optimize threshold and partition under a delay penalty",
    )
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument("--q", type=float, required=True)
    p.add_argument("--c", type=float, required=True)
    p.add_argument("--update-cost", type=float, required=True)
    p.add_argument("--poll-cost", type=float, required=True)
    p.add_argument(
        "--penalty", type=float, required=True, help="cost per polling cycle per call"
    )
    p.add_argument("--d-max", type=int, default=50)

    p = sub.add_parser(
        "policy",
        help="optimize a user's threshold and export the deployable policy JSON",
    )
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument("--q", type=float, required=True)
    p.add_argument("--c", type=float, required=True)
    p.add_argument("--update-cost", type=float, required=True)
    p.add_argument("--poll-cost", type=float, required=True)
    p.add_argument("--max-delay", type=_delay, default=1)
    p.add_argument("--output", help="write the policy JSON here (default: stdout)")

    p = sub.add_parser(
        "metrics",
        help="derived operating characteristics of one (d, m) policy, "
        "or 'metrics summarize PATH' for a --metrics-out artifact",
    )
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument("--q", type=float, help="move probability")
    p.add_argument("--c", type=float, help="call probability")
    p.add_argument("--threshold", type=int, help="d")
    p.add_argument("--max-delay", type=_delay, default=1, help="m (int or 'inf')")
    msub = p.add_subparsers(dest="metrics_command")
    ps = msub.add_parser(
        "summarize",
        help="render a --metrics-out artifact as human-readable tables",
    )
    ps.add_argument("path", help="JSON-lines artifact written by --metrics-out")

    p = sub.add_parser(
        "show",
        help="ASCII hex map: ring distances, paging order, or occupancy",
    )
    p.add_argument(
        "what", choices=("rings", "paging", "occupancy"),
        help="rings: Figure 1(b); paging: polling cycles; occupancy: steady state",
    )
    p.add_argument("--threshold", type=int, default=4, help="d (map radius)")
    p.add_argument("--max-delay", type=_delay, default=2, help="m (paging map)")
    p.add_argument("--q", type=float, default=0.1, help="q (occupancy map)")
    p.add_argument("--c", type=float, default=0.01, help="c (occupancy map)")

    p = sub.add_parser(
        "conformance",
        help="differential conformance suite: cross-backend oracles plus "
        "the paper's metamorphic invariants",
    )
    p.add_argument(
        "--suite", choices=SUITES, default="quick",
        help="quick: PR-sized sweep; full: nightly breadth with larger "
        "simulation budgets and the process-pool oracle",
    )
    p.add_argument("--seed", type=int, default=0, help="suite sampling seed")
    p.add_argument(
        "--models", metavar="NAMES",
        help="comma list restricting the swept models "
        f"(default: all of {','.join(ALL_MODELS)})",
    )
    p.add_argument(
        "--report", metavar="PATH",
        help="write the provenance-stamped JSONL check report here",
    )
    _add_observability_flags(p)

    p = sub.add_parser(
        "compare",
        help="cross-scheme tournament: distance/movement/timer/LA/"
        "jointly-optimal winner map over a parameter grid",
    )
    p.add_argument("--model", choices=sorted(MODEL_CLASSES), default="2d-exact")
    p.add_argument(
        "--vary", action="append", default=[], metavar="PARAM=SPEC",
        help="axis to vary; PARAM is one of q/c/U/V/m, SPEC is either a "
        "comma list (e.g. 'U=20,50,100' or 'm=1,3,inf') or "
        "'start:stop:count[:log]'; repeatable.  Without --vary the "
        "tournament runs at the single fixed operating point",
    )
    p.add_argument("--q", type=float, default=0.05, help="fixed move probability")
    p.add_argument("--c", type=float, default=0.01, help="fixed call probability")
    p.add_argument("--update-cost", type=float, default=100.0, help="fixed U")
    p.add_argument("--poll-cost", type=float, default=10.0, help="fixed V")
    p.add_argument("--max-delay", type=_delay, default=1, help="fixed m")
    p.add_argument("--d-max", type=int, default=100, help="search bound D")
    p.add_argument(
        "--schemes", metavar="NAMES",
        help="comma list restricting the field (distance always runs); "
        "default: all of distance,movement,timer,location-area,"
        "jointly-optimal",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the distance grid leg (1 = serial)",
    )
    p.add_argument(
        "--cache-dir", default="benchmarks/out/cache",
        help="on-disk sweep cache directory (default: benchmarks/out/cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute without reading or writing the sweep cache",
    )
    p.add_argument("--json", help="write the full tournament payload here")
    p.add_argument("--csv", help="write the per-point winner table here")
    _add_observability_flags(p)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        handler = {
            "table1": _cmd_table1,
            "table2": _cmd_table2,
            "fig4": _cmd_fig4,
            "fig5": _cmd_fig5,
            "optimize": _cmd_optimize,
            "sweep": _cmd_sweep,
            "simulate": _cmd_simulate,
            "approx": _cmd_approx,
            "validate": _cmd_validate,
            "speed": _cmd_speed,
            "fleet": _cmd_fleet,
            "faults": _cmd_faults,
            "soft-delay": _cmd_soft_delay,
            "conformance": _cmd_conformance,
            "compare": _cmd_compare,
            "show": _cmd_show,
            "metrics": _cmd_metrics,
            "policy": _cmd_policy,
        }[args.command]
        if getattr(args, "metrics_out", None) or getattr(args, "trace", False):
            return _run_observed(handler, args)
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_observed(handler, args) -> int:
    """Run one subcommand inside an observability session.

    Instrumentation is strictly read-only (it never draws randomness or
    feeds back into computation), so the command's printed numbers are
    bit-identical with or without these flags.
    """
    from .observability import session
    from .observability.export import build_provenance, write_artifact

    with session() as obs:
        code = handler(args)
        if args.metrics_out:
            params = {
                key: value
                for key, value in vars(args).items()
                if key not in ("command", "metrics_out", "trace")
            }
            provenance = build_provenance(
                args.command, params, seed=getattr(args, "seed", None)
            )
            path = write_artifact(args.metrics_out, obs, provenance)
            print(f"\nwrote metrics artifact to {path}")
        if args.trace:
            rows = obs.tracer.summary()
            if rows:
                print()
                print(
                    render_table(
                        ["span", "count", "total s", "mean s"],
                        [list(row) for row in rows],
                        title="Trace spans",
                    )
                )
    return code


def _cmd_table1(args) -> int:
    headers, rows = table1_rows(compute_table1())
    print(render_table(headers, rows, title="Table 1 (1-D), q=0.05 c=0.01 V=10"))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_table2(args) -> int:
    headers, rows = table2_rows(compute_table2())
    print(render_table(headers, rows, title="Table 2 (2-D), q=0.05 c=0.01 V=10"))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _figure_output(figure, args) -> int:
    headers, rows = figure.as_rows()
    print(render_table(headers, rows, title=figure.name))
    if not args.no_plot:
        series = {figure.curve_label(m): ys for m, ys in figure.curves.items()}
        print()
        print(
            render_ascii_plot(
                series,
                figure.x_values,
                title=f"{figure.name}: optimal C_T vs {figure.x_label}",
            )
        )
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_fig4(args) -> int:
    return _figure_output(compute_figure4(args.dimensions, points=args.points), args)


def _cmd_fig5(args) -> int:
    return _figure_output(compute_figure5(args.dimensions, points=args.points), args)


def _cmd_optimize(args) -> int:
    model = MODEL_CLASSES[args.model](
        MobilityParams(move_probability=args.q, call_probability=args.c)
    )
    costs = CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost)
    solution = find_optimal_threshold(
        model, costs, args.max_delay, d_max=args.d_max, method=args.method
    )
    b = solution.breakdown
    print(f"model:            {args.model}")
    print(f"optimal d*:       {solution.threshold}")
    print(f"total cost C_T:   {solution.total_cost:.6f}")
    print(f"  update C_u:     {b.update_cost:.6f}")
    print(f"  paging C_v:     {b.paging_cost:.6f}")
    print(f"expected delay:   {b.expected_delay:.3f} polling cycles")
    print(f"evaluations:      {solution.search.evaluations}")
    return 0


def _parse_axis_spec(param: str, spec: str):
    """Parse one ``--vary`` value grid.

    Comma lists take each token verbatim (``inf`` allowed for ``m``);
    ``start:stop:count[:log]`` expands to an evenly spaced grid.
    """
    from .exceptions import ParameterError

    if ":" in spec:
        parts = spec.split(":")
        if len(parts) not in (3, 4) or (len(parts) == 4 and parts[3] != "log"):
            raise ParameterError(
                f"bad range spec {spec!r} for {param!r}; expected "
                "start:stop:count or start:stop:count:log"
            )
        try:
            start, stop = float(parts[0]), float(parts[1])
            count = int(parts[2])
        except ValueError:
            raise ParameterError(
                f"non-numeric range spec {spec!r} for axis {param!r}"
            ) from None
        if count < 2:
            raise ParameterError(f"range spec {spec!r} needs count >= 2")
        if len(parts) == 4:
            if start <= 0 or stop <= 0:
                raise ParameterError(
                    f"log range spec {spec!r} needs positive endpoints"
                )
            ratio = (stop / start) ** (1.0 / (count - 1))
            values = [start * ratio**i for i in range(count)]
        else:
            step = (stop - start) / (count - 1)
            values = [start + step * i for i in range(count)]
        if param == "m":
            values = [int(round(v)) for v in values]
        return values
    tokens = [t.strip() for t in spec.split(",") if t.strip()]
    if not tokens:
        raise ParameterError(f"empty value list for axis {param!r}")
    try:
        if param == "m":
            return [_delay(t) for t in tokens]
        return [float(t) for t in tokens]
    except ValueError:
        raise ParameterError(
            f"non-numeric value in {spec!r} for axis {param!r}"
        ) from None


def _cmd_sweep(args) -> int:
    from .analysis.sweep import grid_sweep
    from .core.batch import use_solver

    # The sweep is analytic, so ``--backend`` selects the steady-state
    # solver rather than a simulation kernel: the default NumPy backend
    # keeps the dense recursion, while numba/auto enable the banded
    # cutover for very deep chains.
    solver = "dense" if args.backend == "numpy" else "auto"

    axes = {}
    for entry in args.vary:
        param, sep, spec = entry.partition("=")
        if not sep:
            raise ReproError(
                f"--vary takes PARAM=SPEC (e.g. U=20,50,100), got {entry!r}"
            )
        param = param.strip()
        if param in axes:
            raise ReproError(f"axis {param!r} given more than once")
        axes[param] = _parse_axis_spec(param, spec.strip())
    with use_solver(solver):
        result = grid_sweep(
            args.model,
            axes,
            q=args.q,
            c=args.c,
            update_cost=args.update_cost,
            poll_cost=args.poll_cost,
            max_delay=args.max_delay,
            d_max=args.d_max,
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    varied = [name for name, _ in result.axes]
    headers = varied + ["d*", "C_T", "C_u", "C_v", "E[delay]"]
    attr = {"q": "q", "c": "c", "U": "update_cost", "V": "poll_cost",
            "m": "max_delay"}
    rows = [
        [getattr(p, attr[name]) for name in varied]
        + [p.optimal_d, p.total_cost, p.update_component, p.paging_component,
           p.expected_delay]
        for p in result.points
    ]
    shape = " x ".join(str(n) for n in result.shape)
    title = (
        f"Grid sweep ({args.model}, {shape} = {len(result.points)} points, "
        f"d_max={args.d_max})"
    )
    print(render_table(headers, rows, title=title))
    source = "cache" if result.from_cache else (
        f"{args.workers} worker(s)" if args.workers > 1 else "serial solve"
    )
    print(f"\nsource: {source}")
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


def _cmd_simulate(args) -> int:
    from functools import partial

    from .geometry import HexTopology, LineTopology

    topology = LineTopology() if args.dimensions == 1 else HexTopology()
    mobility = MobilityParams(move_probability=args.q, call_probability=args.c)
    costs = CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost)
    spec = mobility_preset(args.mobility, args.q, drift=args.drift)
    if spec is not None and args.dimensions == 1:
        print("CTRW mobility presets require --dimensions 2", file=sys.stderr)
        return 2
    if args.backend != "numpy":
        from .simulation.vectorized import VectorizedDistanceEngine

        engine = VectorizedDistanceEngine(
            topology,
            args.threshold,
            mobility,
            costs,
            max_delay=args.max_delay,
            terminals=args.replications,
            seed=args.seed,
            backend=args.backend,
            walk=spec,
        )
        if args.warmup:
            engine.run(args.warmup)
            engine.reset_meters()
        result = engine.run(args.slots)
        print(f"backend:          {engine.backend_resolved} "
              f"(requested {args.backend}; one vectorized terminal "
              "per replication)")
    else:
        result = run_replicated(
            topology=topology,
            strategy_factory=partial(
                DistanceStrategy, args.threshold, max_delay=args.max_delay
            ),
            mobility=mobility,
            costs=costs,
            slots=args.slots,
            replications=args.replications,
            seed=args.seed,
            warmup_slots=args.warmup,
            workers=args.workers,
            walker_factory=None if spec is None else spec.walker_factory(),
        )
    if spec is not None:
        print(f"mobility:         {args.mobility} "
              f"(q_eff={spec.effective_move_probability():.4f}, "
              f"residence cv^2={spec.residence.cv2():.2f})")
    print(f"replications:     {result.replications} x {args.slots} slots")
    print(f"mean C_T:         {result.mean_total_cost:.6f} "
          f"(+/- {result.total_cost_ci():.6f} at 95%)")
    print(f"  mean C_u:       {result.mean_update_cost:.6f}")
    print(f"  mean C_v:       {result.mean_paging_cost:.6f}")
    print(f"mean page delay:  {result.mean_paging_delay:.3f} cycles")
    return 0


def _cmd_approx(args) -> int:
    from .analysis.approximation import (
        MOBILITY_MODELS,
        approximation_report,
        approximation_rows,
        write_approximation_artifact,
    )

    if args.models:
        models = tuple(name.strip() for name in args.models.split(",") if name.strip())
    else:
        models = MOBILITY_MODELS
    report = approximation_report(
        q=args.q,
        c=args.c,
        d=args.threshold,
        m=args.max_delay,
        update_cost=args.update_cost,
        poll_cost=args.poll_cost,
        slots=args.slots,
        terminals=args.terminals,
        warmup_slots=args.warmup,
        seed=args.seed,
        models=models,
        drift=args.drift,
    )
    headers = [
        "mobility", "q_eff", "cv^2", "simulated", "exact",
        "exact err", "approx err", "deviation", "converges",
    ]
    rows = approximation_rows(report)
    title = (f"analytic vs simulated cost, q={args.q} c={args.c} "
             f"d={args.threshold} m={args.max_delay}")
    print(render_table(headers, rows, title=title))
    if args.csv:
        write_csv(args.csv, headers, rows)
        print(f"wrote {args.csv}")
    if args.report:
        path = write_approximation_artifact(args.report, report)
        print(f"wrote {path}")
    return 0


def _cmd_faults(args) -> int:
    import numpy as np

    from .faults import (
        BaseStationOutage,
        PageLoss,
        RegisterDegradation,
        ResilientEngine,
        SignalingPolicy,
        UpdateLoss,
    )
    from .geometry import HexTopology, LineTopology

    def build_faults():
        faults = []
        if args.loss:
            faults.append(UpdateLoss(args.loss))
        if args.page_loss:
            faults.append(PageLoss(args.page_loss))
        if args.outage_rate:
            faults.append(BaseStationOutage(args.outage_rate, args.outage_duration))
        if args.register_failure_rate:
            faults.append(
                RegisterDegradation(args.register_failure_rate, args.failover_slots)
            )
        return faults

    topology_factory = LineTopology if args.dimensions == 1 else HexTopology
    mobility = MobilityParams(move_probability=args.q, call_probability=args.c)
    costs = CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost)
    signaling = SignalingPolicy(
        max_update_retries=args.retries,
        backoff_factor=args.backoff,
        max_repage_attempts=args.repages,
    )

    def campaign(faulted: bool):
        import numpy.random as npr

        snapshots, reports = [], []
        children = npr.SeedSequence(args.seed).spawn(args.replications)
        for child in children:
            engine = ResilientEngine(
                topology=topology_factory(),
                strategy=DistanceStrategy(args.threshold, max_delay=args.max_delay),
                mobility=mobility,
                costs=costs,
                faults=build_faults() if faulted else [],
                signaling=signaling,
                seed=child,
            )
            snapshots.append(engine.run(args.slots))
            reports.append(engine.fault_report())
        return snapshots, reports

    base_snaps, _ = campaign(faulted=False)
    fault_snaps, fault_reports = campaign(faulted=True)

    def mean(values):
        return float(np.mean(values))

    base_cost = mean([s.mean_total_cost for s in base_snaps])
    fault_cost = mean([s.mean_total_cost for s in fault_snaps])
    base_delay = mean([s.mean_paging_delay for s in base_snaps])
    fault_delay = mean([s.mean_paging_delay for s in fault_snaps])
    rows = [
        ["mean C_T / slot", base_cost, fault_cost,
         f"{fault_cost / base_cost - 1:+.1%}" if base_cost else "n/a"],
        ["mean C_u / slot",
         mean([s.mean_update_cost for s in base_snaps]),
         mean([s.mean_update_cost for s in fault_snaps]), ""],
        ["mean C_v / slot",
         mean([s.mean_paging_cost for s in base_snaps]),
         mean([s.mean_paging_cost for s in fault_snaps]), ""],
        ["mean page delay (cycles)", base_delay, fault_delay,
         f"{fault_delay / base_delay - 1:+.1%}" if base_delay else "n/a"],
    ]
    totals = {
        key: sum(r[key] for r in fault_reports)
        for key in (
            "lost_transmissions", "lost_updates", "update_retries",
            "stale_lookups", "missed_polls", "repages",
            "recovery_pagings", "recovery_cells",
        )
    }
    faults_desc = ", ".join(fault_reports[0]["faults"]) or "none"
    print(
        render_table(
            ["metric", "fault-free", "faulted", "degradation"],
            rows,
            title=(
                f"Fault injection ({args.dimensions}-D, q={args.q}, c={args.c}, "
                f"d={args.threshold}, m={args.max_delay}, "
                f"{args.replications} x {args.slots} slots)"
            ),
        )
    )
    print(f"\nfaults:            {faults_desc}")
    print(f"signaling:         retries={args.retries} backoff={args.backoff} "
          f"repages={args.repages}")
    for key in ("lost_transmissions", "update_retries", "lost_updates",
                "stale_lookups", "missed_polls", "repages",
                "recovery_pagings", "recovery_cells"):
        print(f"{key + ':':<19}{totals[key]}")
    if args.json_path:
        import json
        from pathlib import Path

        payload = {
            "config": {
                "dimensions": args.dimensions, "q": args.q, "c": args.c,
                "update_cost": args.update_cost, "poll_cost": args.poll_cost,
                "threshold": args.threshold,
                "max_delay": None if args.max_delay == math.inf else args.max_delay,
                "slots": args.slots, "replications": args.replications,
                "seed": args.seed,
                "faults": fault_reports[0]["faults"],
                "signaling": {"retries": args.retries, "backoff": args.backoff,
                              "repages": args.repages},
            },
            "baseline": {"mean_total_cost": base_cost,
                         "mean_paging_delay": base_delay},
            "faulted": {"mean_total_cost": fault_cost,
                        "mean_paging_delay": fault_delay},
            "degradation": {
                "cost": fault_cost / base_cost - 1 if base_cost else None,
                "delay": fault_delay / base_delay - 1 if base_delay else None,
            },
            "counters": totals,
        }
        Path(args.json_path).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote JSON report to {args.json_path}")
    return 0


def _cmd_speed(args) -> int:
    from .geometry import HexTopology, LineTopology
    from .simulation.vectorized import compare_backends_report, throughput_report

    topology = LineTopology() if args.dimensions == 1 else HexTopology()
    if args.compare_backends:
        report = compare_backends_report(
            topology=topology,
            threshold=args.threshold,
            mobility=MobilityParams(
                move_probability=args.q, call_probability=args.c
            ),
            costs=CostParams(
                update_cost=args.update_cost, poll_cost=args.poll_cost
            ),
            max_delay=args.max_delay,
            slots=args.vector_slots,
            terminals=args.terminals,
            seed=args.seed,
        )
        rows = [
            [
                row["name"],
                row["resolved"],
                f"{row['slots_per_sec']:,.0f}",
                f"{row['seconds']:.3f}",
                f"{row['mean_total_cost']:.6f}",
            ]
            for row in report["backends"]
        ]
        print(render_table(
            ["backend", "resolved", "terminal-slots/sec", "seconds",
             "mean C_T"],
            rows,
            title=(
                f"Backend comparison (K={args.terminals}, "
                f"{args.vector_slots} slots, d={args.threshold}, "
                f"m={args.max_delay}, numba "
                f"{'available' if report['numba_available'] else 'absent'})"
            ),
        ))
        if args.json_path:
            import json
            from pathlib import Path

            Path(args.json_path).write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote JSON report to {args.json_path}")
        return 0
    report = throughput_report(
        topology=topology,
        threshold=args.threshold,
        mobility=MobilityParams(move_probability=args.q, call_probability=args.c),
        costs=CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost),
        max_delay=args.max_delay,
        engine_slots=args.engine_slots,
        vector_slots=args.vector_slots,
        terminals=args.terminals,
        seed=args.seed,
        backend=args.backend,
    )
    eng, vec = report["engine"], report["vectorized"]
    print(
        f"Throughput at d={args.threshold}, m={args.max_delay}, "
        f"q={args.q}, c={args.c} ({args.dimensions}-D):"
    )
    print(f"  per-cell engine:  {eng['slots_per_sec']:>14,.0f} slots/sec "
          f"({eng['terminal_slots']:,} slots in {eng['seconds']:.3f}s)")
    print(f"  vectorized (K={vec['terminals']}): {vec['slots_per_sec']:>10,.0f} "
          f"terminal-slots/sec ({vec['terminal_slots']:,} in {vec['seconds']:.3f}s)")
    print(f"  speedup:          {report['speedup']:.1f}x")
    if args.backend != "numpy":
        print(f"  backend:          {vec['backend']} (requested {args.backend})")
    if args.json_path:
        import json
        from pathlib import Path

        Path(args.json_path).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote JSON report to {args.json_path}")
    return 0


def _cmd_fleet(args) -> int:
    from .simulation.fleet import fleet_report

    report = fleet_report(
        args.terminals,
        shards=args.shards,
        slots=args.slots,
        workers=args.workers,
        seed=args.seed,
        costs=CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost),
        max_delay=args.max_delay,
        d_max=args.d_max,
        population_seed=args.population_seed,
        checkpoint=args.checkpoint,
        backend=args.backend,
    )
    config = report["config"]
    print(
        f"Fleet: {config['terminals']:,} terminals, {config['shards']} shards, "
        f"{config['slots']} slots, m={config['max_delay']}"
    )
    if config.get("backend", "numpy") != "numpy":
        print(f"backend:           {config['backend_resolved']} "
              f"(requested {config['backend']})")
    print(f"population:        " + ", ".join(
        f"{name}={count:,}" for name, count in config["population"].items()
    ))
    print(f"build time:        {report['build_seconds']:.3f}s")
    print(f"run time:          {report['run_seconds']:.3f}s "
          f"({report['terminal_slots_per_sec']:,.0f} terminal-slots/sec)")
    print(f"mean C_T / slot:   {report['mean_total_cost']:.6f}")
    print(f"  mean C_u:        {report['mean_update_cost']:.6f}")
    print(f"  mean C_v:        {report['mean_paging_cost']:.6f}")
    print(f"mean page delay:   {report['mean_paging_delay']:.3f} cycles")
    rows = [
        [name, f"{stats['terminals']:,}", stats["update_cost"],
         stats["paging_cost"], stats["mean_total_cost"]]
        for name, stats in report["per_profile"].items()
    ]
    print()
    print(render_table(
        ["profile", "terminals", "C_u total", "C_v total", "mean C_T/slot"],
        rows, title="Per-profile breakdown",
    ))
    rss = report["peak_rss_bytes"]
    print(f"\npeak RSS:          {rss['max'] / 2**20:,.0f} MiB "
          f"(budget {report['rss_budget_bytes'] / 2**20:,.0f} MiB, "
          f"{'within' if report['rss_within_budget'] else 'OVER'} budget)")
    if args.json_path:
        import json
        from pathlib import Path

        Path(args.json_path).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote JSON report to {args.json_path}")
    return 0


def _cmd_validate(args) -> int:
    outcomes = run_validation_campaign(
        slots=args.slots, replications=args.replications, workers=args.workers
    )
    headers = ["case", "predicted", "measured", "ci", "rel.err", "ok"]
    rows = []
    failures = 0
    for outcome in outcomes:
        c = outcome.comparison
        rows.append(
            [
                outcome.case.label,
                c.predicted_total,
                c.measured_total,
                c.ci_half_width,
                c.relative_error,
                "yes" if outcome.ok else "NO",
            ]
        )
        if not outcome.ok:
            failures += 1
    print(render_table(headers, rows, title="model-vs-simulation validation"))
    return 1 if failures else 0


def _cmd_conformance(args) -> int:
    from .conformance import run_conformance, write_report

    models = (
        [name.strip() for name in args.models.split(",") if name.strip()]
        if args.models
        else None
    )
    report = run_conformance(suite=args.suite, seed=args.seed, models=models)
    print(report.render())
    if args.report:
        path = write_report(report, args.report)
        print(f"\nwrote conformance report to {path}")
    return 0 if report.ok else 1


def _cmd_soft_delay(args) -> int:
    from .core.delay_penalty import optimize_soft_delay

    model = MODEL_CLASSES[args.model](
        MobilityParams(move_probability=args.q, call_probability=args.c)
    )
    costs = CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost)
    policy = optimize_soft_delay(model, costs, args.penalty, d_max=args.d_max)
    print(f"model:             {args.model}")
    print(f"optimal d*:        {policy.threshold}")
    print(f"partition:         {policy.plan.describe()}")
    print(f"expected delay:    {policy.expected_delay:.3f} polling cycles")
    print(f"total cost:        {policy.total_cost:.6f}")
    print(f"  update C_u:      {policy.update_cost:.6f}")
    print(f"  polling cost:    {policy.paging_cell_cost:.6f}")
    print(f"  delay cost:      {policy.delay_cost:.6f}")
    return 0


def _cmd_policy(args) -> int:
    from .core.policy_io import Policy

    model = MODEL_CLASSES[args.model](
        MobilityParams(move_probability=args.q, call_probability=args.c)
    )
    costs = CostParams(update_cost=args.update_cost, poll_cost=args.poll_cost)
    solution = find_optimal_threshold(model, costs, args.max_delay)
    policy = Policy.sdf(model.topology, solution.threshold, args.max_delay)
    text = policy.to_json()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(
            f"wrote policy (d={solution.threshold}, "
            f"C_T={solution.total_cost:.4f}) to {args.output}"
        )
    else:
        print(text)
    return 0


def _cmd_metrics(args) -> int:
    from .core.costs import CostEvaluator
    from .core.derived import derive_metrics

    if getattr(args, "metrics_command", None) == "summarize":
        from .observability.export import read_artifact, summarize_artifact

        print(summarize_artifact(read_artifact(args.path)))
        return 0
    missing = [
        flag
        for flag, value in (
            ("--q", args.q), ("--c", args.c), ("--threshold", args.threshold)
        )
        if value is None
    ]
    if missing:
        raise ReproError(
            "metrics needs " + ", ".join(missing) + " for the analytic "
            "report, or a subcommand: repro-lm metrics summarize PATH"
        )
    model = MODEL_CLASSES[args.model](
        MobilityParams(move_probability=args.q, call_probability=args.c)
    )
    evaluator = CostEvaluator(model, CostParams(update_cost=1.0, poll_cost=1.0))
    metrics = derive_metrics(evaluator, args.threshold, args.max_delay)
    print(f"model:                      {args.model}  (d={args.threshold}, "
          f"m={args.max_delay})")
    print(f"update rate:                {metrics.update_rate:.6f} /slot")
    print(f"mean slots between updates: {metrics.mean_slots_between_updates:.1f}")
    print(f"register fix rate:          {metrics.fix_rate:.6f} /slot")
    print(f"mean fix gap:               {metrics.mean_fix_gap:.1f} slots")
    print(f"mean register staleness:    {metrics.mean_register_staleness:.1f} slots")
    print(f"mean distance from center:  {metrics.mean_distance:.3f} rings")
    print(f"P(at center ring):          {metrics.at_center_probability:.3f}")
    print(f"cells polled per call:      {metrics.cells_per_call:.3f}")
    print(f"polling cycles per call:    {metrics.cycles_per_call:.3f}")
    return 0


def _cmd_show(args) -> int:
    from .analysis.hexmap import (
        render_occupancy,
        render_paging_order,
        render_ring_distances,
    )
    from .core.models import TwoDimensionalModel
    from .paging import sdf_partition

    if args.what == "rings":
        print(f"Ring distances within d={args.threshold} (paper Figure 1(b)):")
        print(render_ring_distances(args.threshold))
    elif args.what == "paging":
        plan = sdf_partition(args.threshold, args.max_delay)
        print(
            f"Polling cycle per cell, d={args.threshold}, "
            f"m={args.max_delay} ({plan.describe()}):"
        )
        print(render_paging_order(plan))
    else:
        model = TwoDimensionalModel(
            MobilityParams(move_probability=args.q, call_probability=args.c)
        )
        print(
            f"Steady-state per-cell occupancy, d={args.threshold}, "
            f"q={args.q}, c={args.c} (darker = more likely):"
        )
        print(render_occupancy(model, args.threshold))
    return 0


def _cmd_compare(args) -> int:
    import json as json_module

    from .analysis.compare import SCHEMES, run_tournament

    axes = {}
    for entry in args.vary:
        param, sep, spec = entry.partition("=")
        if not sep:
            raise ReproError(
                f"--vary takes PARAM=SPEC (e.g. U=20,50,100), got {entry!r}"
            )
        param = param.strip()
        if param in axes:
            raise ReproError(f"axis {param!r} given more than once")
        axes[param] = _parse_axis_spec(param, spec.strip())
    if not axes:
        # Degenerate single-point tournament: vary m over just the
        # fixed value so grid_sweep has an axis to enumerate.
        axes = {"m": [args.max_delay]}
    schemes = None
    if args.schemes:
        schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]

    result = run_tournament(
        args.model,
        axes,
        q=args.q,
        c=args.c,
        update_cost=args.update_cost,
        poll_cost=args.poll_cost,
        max_delay=args.max_delay,
        d_max=args.d_max,
        schemes=schemes,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
    )

    varied = [name for name, _ in result.axes]
    headers = varied + [f"{s} C_T" for s in result.schemes] + ["winner"]
    attr = {"q": "q", "c": "c", "U": "update_cost", "V": "poll_cost",
            "m": "max_delay"}
    rows = []
    for point in result.points:
        row = [getattr(point, attr[name]) for name in varied]
        row += [point.outcome(s).total_cost for s in result.schemes]
        row.append(point.winner)
        rows.append(row)
    shape = " x ".join(str(n) for n in result.shape)
    print(
        render_table(
            headers,
            rows,
            title=(
                f"Scheme tournament ({args.model}, {shape} = "
                f"{len(result.points)} points, d_max={args.d_max})"
            ),
        )
    )
    counts = result.winner_counts()
    summary = ", ".join(f"{s}: {counts[s]}" for s in result.schemes)
    print(f"\nwins: {summary}")
    source = "cache" if result.from_cache else (
        f"{args.workers} worker(s)" if args.workers > 1 else "serial solve"
    )
    print(f"source: {source}")
    if args.json:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json_module.dumps(result.to_payload(), indent=2) + "\n"
        )
        print(f"payload: {args.json}")
    if args.csv:
        write_csv(args.csv, headers, rows)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
