"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "SolverError",
    "PartitionError",
    "SimulationError",
    "SweepPointError",
    "FaultInjectionError",
    "RecoveryExhaustedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model, cost, or configuration parameter is out of range.

    Raised eagerly at construction time so that invalid parameters never
    propagate into solvers, where they would surface as cryptic numerical
    failures.
    """


class SolverError(ReproError, ArithmeticError):
    """A steady-state or optimization solver failed to produce a result.

    This signals a genuine numerical breakdown (singular system, failed
    normalization), not invalid input -- invalid input raises
    :class:`ParameterError` before any solver runs.
    """


class PartitionError(ReproError, ValueError):
    """A paging partition violates the rules of Section 2.2 of the paper.

    Every ring of the residing area must be covered exactly once and the
    number of subareas must not exceed the maximum paging delay.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-time PCN simulator reached an inconsistent state."""


class SweepPointError(ReproError, RuntimeError):
    """One grid point of a parameter sweep failed to solve.

    A pooled :func:`repro.analysis.sweep.grid_sweep` surfaces worker
    failures through ``future.result()``, which re-raises the original
    exception with no indication of *which* of possibly thousands of
    grid points blew up.  Solvers therefore wrap any failure in this
    exception, attaching the failing point's parameters (``point`` is a
    plain dict with ``q``, ``c``, ``U``, ``V``, ``m`` plus the row-major
    ``index``) and the original error's representation, so a red sweep
    is immediately reproducible.  The original exception is chained as
    ``__cause__`` on the serial path; across a process pool the cause
    does not survive pickling, which is exactly why the message itself
    carries the point and the underlying error.
    """

    def __init__(self, message: str, point: dict):
        super().__init__(message)
        self.point = dict(point)

    def __reduce__(self):
        # Two-argument constructor: default Exception pickling would
        # re-call ``__init__(message)`` and lose ``point``.
        return type(self), (self.args[0], self.point)


class FaultInjectionError(ReproError, RuntimeError):
    """A fault model was used inconsistently with the engine's protocol.

    Raised when a :class:`~repro.faults.FaultModel` is exercised before
    being bound to an engine, or produces output the signaling layer
    cannot interpret.  Configuration errors (out-of-range rates) raise
    :class:`ParameterError` at construction instead.
    """


class RecoveryExhaustedError(SimulationError):
    """Escalating recovery ran out of attempts without locating a party.

    Raised when recovery paging hits its hard ring/cycle cap, or when a
    strict :class:`~repro.faults.SignalingPolicy` exhausts its update
    retries.  Subclasses :class:`SimulationError` so existing recovery
    callers keep working.
    """
