"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError``, ``AttributeError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "SolverError",
    "PartitionError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model, cost, or configuration parameter is out of range.

    Raised eagerly at construction time so that invalid parameters never
    propagate into solvers, where they would surface as cryptic numerical
    failures.
    """


class SolverError(ReproError, ArithmeticError):
    """A steady-state or optimization solver failed to produce a result.

    This signals a genuine numerical breakdown (singular system, failed
    normalization), not invalid input -- invalid input raises
    :class:`ParameterError` before any solver runs.
    """


class PartitionError(ReproError, ValueError):
    """A paging partition violates the rules of Section 2.2 of the paper.

    Every ring of the residing area must be covered exactly once and the
    number of subareas must not exceed the maximum paging delay.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-time PCN simulator reached an inconsistent state."""
