"""Discrete-time Geo/G/1 queue: the shared paging channel.

The paper measures paging delay in *polling cycles* per call and
assumes the network can always start paging immediately.  In a real
PCN the paging requests of all terminals in a service area share one
paging channel: while the network is mid-paging for one call, the next
request waits.  This module provides the queueing substrate for that
contention:

* arrivals: Bernoulli, probability ``lam`` per slot (the superposition
  of many independent terminals' calls, each rare -- the discrete
  analogue of Poisson);
* service: the number of polling cycles of one paging operation, an
  arbitrary distribution on ``{1, 2, ...}`` (induced by the paging
  plan: ``P(S = j) = alpha_j``);
* discipline: FIFO, one paging at a time.

Analytics use the discrete Pollaczek-Khinchine form for the
late-arrival model,

    E[W] = lam * E[S (S - 1)] / (2 (1 - rho)),     rho = lam E[S],

which is exact for Bernoulli arrivals (at most one arrival per slot;
note ``S = 1`` deterministic gives ``E[W] = 0``, as it must).  A
discrete-event simulation of the same queue is included and the test
suite verifies the formula against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = ["ServiceDistribution", "QueueAnalysis", "analyze_queue", "simulate_queue"]


@dataclass(frozen=True)
class ServiceDistribution:
    """A probability distribution over service times ``1 .. len(pmf)``.

    ``pmf[j]`` is the probability of a service lasting ``j + 1`` slots.
    """

    pmf: Sequence[float]

    def __post_init__(self) -> None:
        arr = np.asarray(self.pmf, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ParameterError("service pmf must be a non-empty 1-D sequence")
        if np.any(arr < -1e-12):
            raise ParameterError("service pmf must be non-negative")
        if abs(arr.sum() - 1.0) > 1e-9:
            raise ParameterError(f"service pmf must sum to 1, got {arr.sum()}")

    def _array(self) -> np.ndarray:
        return np.asarray(self.pmf, dtype=float)

    @property
    def mean(self) -> float:
        """``E[S]`` in slots."""
        arr = self._array()
        return float(arr @ np.arange(1, arr.size + 1))

    @property
    def second_factorial_moment(self) -> float:
        """``E[S (S - 1)]`` -- the quantity in the discrete P-K formula."""
        arr = self._array()
        s = np.arange(1, arr.size + 1, dtype=float)
        return float(arr @ (s * (s - 1.0)))

    @property
    def second_moment(self) -> float:
        """``E[S^2]``."""
        arr = self._array()
        s = np.arange(1, arr.size + 1, dtype=float)
        return float(arr @ (s * s))

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` service times."""
        arr = self._array()
        return rng.choice(np.arange(1, arr.size + 1), size=size, p=arr / arr.sum())


@dataclass(frozen=True)
class QueueAnalysis:
    """Closed-form performance of the paging channel."""

    arrival_rate: float
    mean_service: float
    utilization: float
    mean_wait: float

    @property
    def mean_sojourn(self) -> float:
        """Total slots from request to paging completion."""
        return self.mean_wait + self.mean_service

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0


def analyze_queue(arrival_rate: float, service: ServiceDistribution) -> QueueAnalysis:
    """Discrete P-K analysis of the Geo/G/1 paging channel.

    Raises :class:`ParameterError` if the channel is overloaded
    (``rho >= 1``), because the stationary wait does not exist there --
    callers doing dimensioning sweeps should catch this and mark the
    configuration infeasible.
    """
    if not 0.0 <= arrival_rate < 1.0:
        raise ParameterError(
            f"arrival probability per slot must be in [0, 1), got {arrival_rate}"
        )
    rho = arrival_rate * service.mean
    if rho >= 1.0:
        raise ParameterError(
            f"paging channel overloaded: rho = {rho:.3f} >= 1 "
            f"(lambda={arrival_rate}, E[S]={service.mean:.3f})"
        )
    if arrival_rate == 0.0:
        wait = 0.0
    else:
        wait = arrival_rate * service.second_factorial_moment / (2.0 * (1.0 - rho))
    return QueueAnalysis(
        arrival_rate=arrival_rate,
        mean_service=service.mean,
        utilization=rho,
        mean_wait=wait,
    )


def simulate_queue(
    arrival_rate: float,
    service: ServiceDistribution,
    slots: int,
    seed: Optional[int] = None,
) -> QueueAnalysis:
    """Event simulation of the same queue, for validating the formula.

    Late-arrival convention: arrivals land at the end of a slot and can
    be served starting the next slot; a measured request's wait is the
    number of full slots between arrival and service start.
    """
    if slots < 1:
        raise ParameterError(f"slots must be >= 1, got {slots}")
    if not 0.0 <= arrival_rate < 1.0:
        raise ParameterError(
            f"arrival probability per slot must be in [0, 1), got {arrival_rate}"
        )
    rng = np.random.default_rng(seed)
    arrivals = rng.random(slots) < arrival_rate
    arrival_slots = np.flatnonzero(arrivals)
    count = arrival_slots.size
    if count == 0:
        return QueueAnalysis(
            arrival_rate=arrival_rate,
            mean_service=service.mean,
            utilization=0.0,
            mean_wait=0.0,
        )
    services = service.sample(rng, count)
    start = np.empty(count, dtype=np.int64)
    finish = np.empty(count, dtype=np.int64)
    free_at = 0
    for i in range(count):
        begin = max(arrival_slots[i] + 1, free_at)
        start[i] = begin
        finish[i] = begin + services[i]
        free_at = finish[i]
    waits = start - (arrival_slots + 1)
    busy = float(services.sum()) / slots
    return QueueAnalysis(
        arrival_rate=arrival_rate,
        mean_service=float(services.mean()),
        utilization=min(busy, 1.0),
        mean_wait=float(waits.mean()),
    )
