"""Paging-channel dimensioning for a population of terminals.

Connects the paper's per-terminal delay bound ``m`` to the system-level
resource it trades against.  For ``n`` statistically identical
terminals sharing one service area's paging channel:

* each paging operation occupies the channel for its polling-cycle
  count, distributed as the subarea-index distribution ``alpha_j`` of
  the paging plan;
* requests arrive at aggregate rate ``n * c`` per slot;
* queueing (Geo/G/1) adds waiting time on top of the polling cycles,
  so the *true* call-setup latency is ``E[W] + E[S]`` -- which can
  invert the naive preference for large ``m``: staging paging finely
  saves polled cells but holds the channel longer, and past the
  stability knee the queueing wait dwarfs the polling time;
* the per-slot cell-polling bandwidth is ``n * c * E[cells polled]``,
  the wireless-side cost that small ``m`` inflates.

:func:`dimension_channel` sweeps delay bounds for a given population
size and reports, per ``m``: utilization, mean wait, total setup
latency, and polling bandwidth -- the table an operator actually needs
when choosing ``m`` ("the maximum paging delay can be selected based on
the particular system requirement", Section 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.costs import CostEvaluator
from ..core.models import MobilityModel
from ..core.parameters import CostParams, validate_delay, validate_threshold
from ..core.threshold import find_optimal_threshold
from ..exceptions import ParameterError
from .queue import QueueAnalysis, ServiceDistribution, analyze_queue

__all__ = ["ChannelOperatingPoint", "channel_operating_point", "dimension_channel"]


@dataclass(frozen=True)
class ChannelOperatingPoint:
    """System-level consequences of one ``(d, m)`` policy for ``n`` users."""

    terminals: int
    threshold: int
    delay_bound: float
    feasible: bool
    utilization: float
    mean_wait_slots: float
    mean_paging_cycles: float
    polling_bandwidth: float
    per_terminal_cost: float

    @property
    def setup_latency(self) -> float:
        """Mean slots from call arrival to terminal located.

        ``inf`` for infeasible (overloaded) configurations.
        """
        if not self.feasible:
            return math.inf
        return self.mean_wait_slots + self.mean_paging_cycles


def channel_operating_point(
    model: MobilityModel,
    costs: CostParams,
    d: int,
    m,
    terminals: int,
) -> ChannelOperatingPoint:
    """Evaluate the shared channel for ``terminals`` users at ``(d, m)``."""
    d = validate_threshold(d)
    m = validate_delay(m)
    if terminals < 1:
        raise ParameterError(f"terminals must be >= 1, got {terminals}")
    evaluator = CostEvaluator(model, costs)
    breakdown = evaluator.breakdown(d, m)
    plan = evaluator.plan(d, m)
    p = model.steady_state(d)
    alpha = plan.subarea_probabilities(p)
    service = ServiceDistribution(pmf=list(alpha))
    arrival = terminals * model.c
    if arrival >= 1.0:
        raise ParameterError(
            f"aggregate call probability {arrival:.3f} per slot exceeds the "
            "one-arrival-per-slot Bernoulli model; shard the service area"
        )
    bandwidth = terminals * model.c * breakdown.expected_polled_cells
    try:
        queue: Optional[QueueAnalysis] = analyze_queue(arrival, service)
    except ParameterError:
        queue = None  # overloaded: rho >= 1
    return ChannelOperatingPoint(
        terminals=terminals,
        threshold=d,
        delay_bound=m,
        feasible=queue is not None,
        utilization=queue.utilization if queue else arrival * service.mean,
        mean_wait_slots=queue.mean_wait if queue else math.inf,
        mean_paging_cycles=breakdown.expected_delay,
        polling_bandwidth=bandwidth,
        per_terminal_cost=breakdown.total_cost,
    )


def dimension_channel(
    model: MobilityModel,
    costs: CostParams,
    terminals: int,
    delays: Sequence[float] = (1, 2, 3, 5, math.inf),
    d_max: int = 60,
) -> List[ChannelOperatingPoint]:
    """Sweep delay bounds, using each bound's own optimal threshold.

    Overloaded configurations are returned with ``feasible=False``
    rather than raised, so a dimensioning table can show *why* a bound
    is unusable.
    """
    points: List[ChannelOperatingPoint] = []
    for m in delays:
        solution = find_optimal_threshold(model, costs, m, d_max=d_max)
        points.append(
            channel_operating_point(
                model, costs, solution.threshold, m, terminals
            )
        )
    return points
