"""Shared paging-channel capacity model (Geo/G/1) and dimensioning.

Turns the paper's per-call polling-cycle counts into system-level
quantities -- channel utilization, queueing wait, call-setup latency,
and cell-polling bandwidth -- for a population of terminals sharing one
paging channel.
"""

from .paging_channel import (
    ChannelOperatingPoint,
    channel_operating_point,
    dimension_channel,
)
from .queue import QueueAnalysis, ServiceDistribution, analyze_queue, simulate_queue

__all__ = [
    "ChannelOperatingPoint",
    "QueueAnalysis",
    "ServiceDistribution",
    "analyze_queue",
    "channel_operating_point",
    "dimension_channel",
    "simulate_queue",
]
