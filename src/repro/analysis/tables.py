"""Regeneration of the paper's Tables 1 and 2.

Each function recomputes the full table from the library's models and
optimizers and, where the paper printed a value, attaches the original
for comparison.  The structures returned are plain dataclasses; the
table benches render them with :func:`repro.analysis.report.render_table`
and the regression tests assert on them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.costs import CostEvaluator
from ..core.models import OneDimensionalModel, TwoDimensionalModel
from ..core.near_optimal import near_optimal_threshold
from ..core.parameters import CostParams, MobilityParams
from ..core.threshold import find_optimal_threshold
from . import paper_data

__all__ = [
    "Table1Entry",
    "Table2Entry",
    "compute_table1",
    "compute_table2",
    "table1_rows",
    "table2_rows",
    "TABLE1_DELAYS",
    "TABLE2_DELAYS",
]

#: Delay columns of each table.
TABLE1_DELAYS: Tuple[float, ...] = (1, 2, 3, math.inf)
TABLE2_DELAYS: Tuple[float, ...] = (1, 3, math.inf)

#: Search bound: the largest published d* is 52 (Table 1, U=1000,
#: unbounded); 100 leaves generous headroom.
_D_MAX = 100


@dataclass(frozen=True)
class Table1Entry:
    """One (U, delay) cell of Table 1, computed and published."""

    update_cost: float
    delay: float
    optimal_d: int
    total_cost: float
    paper_d: Optional[int]
    paper_cost: Optional[float]

    @property
    def cost_delta(self) -> float:
        """Computed minus published cost (NaN if unpublished)."""
        if self.paper_cost is None:
            return math.nan
        return self.total_cost - self.paper_cost


@dataclass(frozen=True)
class Table2Entry:
    """One (U, delay) cell of Table 2: exact and near-optimal columns."""

    update_cost: float
    delay: float
    optimal_d: int
    near_optimal_d: int
    total_cost: float
    near_optimal_cost: float
    paper_d: Optional[int]
    paper_near_d: Optional[int]
    paper_cost: Optional[float]
    paper_near_cost: Optional[float]


def compute_table1(
    u_values: Sequence[float] = paper_data.TABLE_U_VALUES,
    delays: Sequence[float] = TABLE1_DELAYS,
    q: float = paper_data.TABLE1_PARAMS["q"],
    c: float = paper_data.TABLE1_PARAMS["c"],
    poll_cost: float = paper_data.TABLE1_PARAMS["V"],
    d_max: int = _D_MAX,
) -> Dict[float, Dict[float, Table1Entry]]:
    """Recompute Table 1; returns ``{delay: {U: Table1Entry}}``."""
    mobility = MobilityParams(move_probability=q, call_probability=c)
    model = OneDimensionalModel(mobility)
    table: Dict[float, Dict[float, Table1Entry]] = {m: {} for m in delays}
    for U in u_values:
        costs = CostParams(update_cost=U, poll_cost=poll_cost)
        for m in delays:
            solution = find_optimal_threshold(model, costs, m, d_max=d_max)
            published = paper_data.TABLE1.get(m, {}).get(U)
            table[m][U] = Table1Entry(
                update_cost=U,
                delay=m,
                optimal_d=solution.threshold,
                total_cost=solution.total_cost,
                paper_d=published.optimal_d if published else None,
                paper_cost=published.total_cost if published else None,
            )
    return table


def compute_table2(
    u_values: Sequence[float] = paper_data.TABLE_U_VALUES,
    delays: Sequence[float] = TABLE2_DELAYS,
    q: float = paper_data.TABLE2_PARAMS["q"],
    c: float = paper_data.TABLE2_PARAMS["c"],
    poll_cost: float = paper_data.TABLE2_PARAMS["V"],
    d_max: int = _D_MAX,
) -> Dict[float, Dict[float, Table2Entry]]:
    """Recompute Table 2; returns ``{delay: {U: Table2Entry}}``.

    The near-optimal columns deliberately *omit* the paper's 0-vs-1
    correction rule, because the published table predates it (the
    correction is proposed as a remedy for the worst cases visible in
    the table).
    """
    mobility = MobilityParams(move_probability=q, call_probability=c)
    model = TwoDimensionalModel(mobility)
    table: Dict[float, Dict[float, Table2Entry]] = {m: {} for m in delays}
    for U in u_values:
        costs = CostParams(update_cost=U, poll_cost=poll_cost)
        for m in delays:
            solution = find_optimal_threshold(model, costs, m, d_max=d_max)
            near = near_optimal_threshold(
                mobility, costs, m, d_max=d_max, apply_correction=False
            )
            published = paper_data.TABLE2.get(m, {}).get(U)
            table[m][U] = Table2Entry(
                update_cost=U,
                delay=m,
                optimal_d=solution.threshold,
                near_optimal_d=near.threshold,
                total_cost=solution.total_cost,
                near_optimal_cost=near.exact_cost,
                paper_d=published.optimal_d if published else None,
                paper_near_d=published.near_optimal_d if published else None,
                paper_cost=published.total_cost if published else None,
                paper_near_cost=published.near_optimal_cost if published else None,
            )
    return table


def table1_rows(
    table: Dict[float, Dict[float, Table1Entry]]
) -> Tuple[List[str], List[List[object]]]:
    """Flatten a computed Table 1 into (headers, rows) for rendering."""
    delays = sorted(table, key=lambda m: (m == math.inf, m))
    headers: List[str] = ["U"]
    for m in delays:
        label = "inf" if m == math.inf else int(m)
        headers += [f"d*(m={label})", f"C_T(m={label})", f"paper C_T(m={label})"]
    u_values = sorted(next(iter(table.values())))
    rows: List[List[object]] = []
    for U in u_values:
        row: List[object] = [int(U)]
        for m in delays:
            entry = table[m][U]
            row += [
                entry.optimal_d,
                entry.total_cost,
                entry.paper_cost if entry.paper_cost is not None else math.nan,
            ]
        rows.append(row)
    return headers, rows


def table2_rows(
    table: Dict[float, Dict[float, Table2Entry]]
) -> Tuple[List[str], List[List[object]]]:
    """Flatten a computed Table 2 into (headers, rows) for rendering."""
    delays = sorted(table, key=lambda m: (m == math.inf, m))
    headers: List[str] = ["U"]
    for m in delays:
        label = "inf" if m == math.inf else int(m)
        headers += [
            f"d*(m={label})",
            f"d'(m={label})",
            f"C_T(m={label})",
            f"C'_T(m={label})",
        ]
    u_values = sorted(next(iter(table.values())))
    rows: List[List[object]] = []
    for U in u_values:
        row: List[object] = [int(U)]
        for m in delays:
            entry = table[m][U]
            row += [
                entry.optimal_d,
                entry.near_optimal_d,
                entry.total_cost,
                entry.near_optimal_cost,
            ]
        rows.append(row)
    return headers, rows
