"""Analytic-model-vs-simulation validation campaign.

Not an experiment from the paper -- the paper is purely analytical --
but the experiment a reviewer would ask for: does the Markov model
predict what actually happens to a terminal random-walking on the real
cell grid?

Two distinct questions are answered:

1. **1-D fidelity.**  On the line the ring-index process *is* the
   walk's distance process, so the model is exact and simulation must
   agree within confidence intervals.
2. **2-D aggregation error.**  On the hex grid the chain on the ring
   index aggregates corner and edge cells (the paper's
   ``p+(i) = 1/3 + 1/(6i)`` is a ring average), so small systematic
   deviations are expected; the campaign measures them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..conformance.agreement import comparison_ok
from ..core.models import MobilityModel, OneDimensionalModel, TwoDimensionalModel
from ..core.parameters import CostParams, MobilityParams
from ..simulation.runner import ModelComparison, validate_against_model

__all__ = ["ValidationCase", "ValidationOutcome", "run_validation_campaign", "DEFAULT_CASES"]


@dataclass(frozen=True)
class ValidationCase:
    """One (model, parameters, operating point) to validate."""

    label: str
    dimensions: int
    q: float
    c: float
    update_cost: float
    poll_cost: float
    d: int
    m: float


@dataclass(frozen=True)
class ValidationOutcome:
    """A case together with its comparison result."""

    case: ValidationCase
    comparison: ModelComparison

    @property
    def ok(self) -> bool:
        """Dimension-aware agreement criterion.

        Delegates to :func:`repro.conformance.agreement.comparison_ok`,
        the same reusable check the conformance harness registers as
        ``simulation-within-ci``: within the replication CI, or within
        2% (1-D, where the ring chain is exact) / 5% (2-D, where ring
        aggregation biases fast walkers by up to ~4%) relative error.
        """
        return comparison_ok(self.comparison, self.case.dimensions)


#: A spread of operating points: both geometries, slow and fast
#: mobility, light and heavy traffic, delay-constrained and not.
DEFAULT_CASES: Tuple[ValidationCase, ...] = (
    ValidationCase("1d-baseline", 1, 0.05, 0.01, 50.0, 10.0, d=2, m=1),
    ValidationCase("1d-fast-walker", 1, 0.30, 0.01, 50.0, 10.0, d=4, m=2),
    ValidationCase("1d-heavy-traffic", 1, 0.05, 0.08, 20.0, 10.0, d=1, m=math.inf),
    ValidationCase("1d-zero-threshold", 1, 0.10, 0.02, 10.0, 10.0, d=0, m=1),
    ValidationCase("2d-baseline", 2, 0.05, 0.01, 50.0, 10.0, d=2, m=1),
    ValidationCase("2d-fast-walker", 2, 0.30, 0.01, 100.0, 10.0, d=4, m=3),
    ValidationCase("2d-heavy-traffic", 2, 0.05, 0.08, 20.0, 10.0, d=1, m=math.inf),
    ValidationCase("2d-wide-area", 2, 0.20, 0.005, 200.0, 5.0, d=5, m=2),
)


def run_validation_campaign(
    cases: Sequence[ValidationCase] = DEFAULT_CASES,
    slots: int = 150_000,
    replications: int = 5,
    seed: int = 7,
    workers=None,
) -> List[ValidationOutcome]:
    """Run every case and return the outcomes in order.

    ``workers`` is forwarded to :func:`run_replicated` via
    :func:`validate_against_model`; results are bit-identical for any
    worker count.
    """
    outcomes: List[ValidationOutcome] = []
    for index, case in enumerate(cases):
        mobility = MobilityParams(move_probability=case.q, call_probability=case.c)
        model: MobilityModel
        if case.dimensions == 1:
            model = OneDimensionalModel(mobility)
        else:
            model = TwoDimensionalModel(mobility)
        comparison = validate_against_model(
            model,
            CostParams(update_cost=case.update_cost, poll_cost=case.poll_cost),
            d=case.d,
            m=case.m,
            slots=slots,
            replications=replications,
            seed=seed + index,
            workers=workers,
        )
        outcomes.append(ValidationOutcome(case=case, comparison=comparison))
    return outcomes
