"""The paper's published numerical results, transcribed verbatim.

Embedding the originals lets the table benches and the regression tests
compare reproduction output cell-by-cell instead of eyeballing, and
lets EXPERIMENTS.md report exact deltas.

Sources: Table 1 ("Optimal Threshold Distance and Average Total Cost
for One-Dimensional Mobility Model") and Table 2 (same, two-dimensional)
of Akyildiz & Ho, SIGCOMM '95.  Shared parameters for both tables:
``c = 0.01``, ``q = 0.05``, ``V = 10``, ``U`` varying per row.

Figures 4 and 5 are curve plots without printed values; only their
parameterization is recorded here (used by the figure benches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "TABLE1_PARAMS",
    "TABLE1",
    "TABLE2_PARAMS",
    "TABLE2",
    "TABLE_U_VALUES",
    "FIGURE4_PARAMS",
    "FIGURE5_PARAMS",
    "Table1Row",
    "Table2Cell",
]

#: The U column shared by both tables.
TABLE_U_VALUES: Tuple[int, ...] = (
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
    20, 30, 40, 50, 60, 70, 80, 90, 100,
    200, 300, 400, 500, 600, 700, 800, 900, 1000,
)

#: Fixed parameters of Tables 1 and 2.
TABLE1_PARAMS: Dict[str, float] = {"q": 0.05, "c": 0.01, "V": 10.0}
TABLE2_PARAMS: Dict[str, float] = {"q": 0.05, "c": 0.01, "V": 10.0}


@dataclass(frozen=True)
class Table1Row:
    """One (delay, U) entry of Table 1: optimal distance and cost."""

    optimal_d: int
    total_cost: float


@dataclass(frozen=True)
class Table2Cell:
    """One (delay, U) entry of Table 2: exact and near-optimal columns."""

    optimal_d: int
    near_optimal_d: int
    total_cost: float
    near_optimal_cost: float


def _t1(rows) -> Dict[float, Dict[int, Table1Row]]:
    delays = (1, 2, 3, math.inf)
    out: Dict[float, Dict[int, Table1Row]] = {m: {} for m in delays}
    for U, *cells in rows:
        for m, (d_star, cost) in zip(delays, cells):
            out[m][U] = Table1Row(optimal_d=d_star, total_cost=cost)
    return out


#: Table 1, keyed as ``TABLE1[delay][U] -> Table1Row``.
#: delay keys: 1, 2, 3, math.inf.
TABLE1: Dict[float, Dict[int, Table1Row]] = _t1(
    [
        (1, (0, 0.125), (0, 0.125), (0, 0.125), (0, 0.125)),
        (2, (0, 0.150), (0, 0.150), (0, 0.150), (0, 0.150)),
        (3, (0, 0.175), (0, 0.175), (0, 0.175), (0, 0.175)),
        (4, (0, 0.200), (0, 0.200), (0, 0.200), (0, 0.200)),
        (5, (0, 0.225), (0, 0.225), (0, 0.225), (0, 0.225)),
        (6, (0, 0.250), (0, 0.250), (0, 0.250), (0, 0.250)),
        (7, (0, 0.275), (1, 0.270), (1, 0.270), (1, 0.270)),
        (8, (0, 0.300), (1, 0.282), (1, 0.282), (1, 0.282)),
        (9, (0, 0.325), (1, 0.293), (2, 0.291), (2, 0.291)),
        (10, (0, 0.350), (1, 0.305), (2, 0.296), (2, 0.296)),
        (20, (1, 0.527), (1, 0.418), (2, 0.339), (3, 0.338)),
        (30, (2, 0.630), (2, 0.465), (2, 0.382), (3, 0.357)),
        (40, (2, 0.673), (3, 0.486), (3, 0.415), (4, 0.371)),
        (50, (2, 0.716), (3, 0.506), (3, 0.435), (4, 0.381)),
        (60, (2, 0.760), (3, 0.526), (3, 0.454), (5, 0.386)),
        (70, (2, 0.803), (3, 0.545), (3, 0.474), (6, 0.391)),
        (80, (2, 0.846), (3, 0.565), (3, 0.494), (6, 0.394)),
        (90, (3, 0.878), (4, 0.579), (5, 0.510), (7, 0.396)),
        (100, (3, 0.897), (4, 0.589), (5, 0.515), (7, 0.397)),
        (200, (3, 1.095), (4, 0.686), (6, 0.548), (12, 0.401)),
        (300, (4, 1.193), (6, 0.724), (7, 0.565), (17, 0.402)),
        (400, (4, 1.290), (6, 0.750), (7, 0.579), (22, 0.402)),
        (500, (5, 1.351), (6, 0.776), (7, 0.593), (27, 0.402)),
        (600, (5, 1.401), (6, 0.803), (7, 0.607), (32, 0.402)),
        (700, (5, 1.451), (6, 0.829), (7, 0.621), (37, 0.402)),
        (800, (5, 1.501), (6, 0.855), (7, 0.635), (42, 0.402)),
        (900, (6, 1.537), (8, 0.868), (7, 0.649), (47, 0.402)),
        (1000, (6, 1.563), (8, 0.876), (7, 0.663), (52, 0.402)),
    ]
)


def _t2(rows) -> Dict[float, Dict[int, Table2Cell]]:
    delays = (1, 3, math.inf)
    out: Dict[float, Dict[int, Table2Cell]] = {m: {} for m in delays}
    for U, *cells in rows:
        for m, (d_star, d_prime, cost, near_cost) in zip(delays, cells):
            out[m][U] = Table2Cell(
                optimal_d=d_star,
                near_optimal_d=d_prime,
                total_cost=cost,
                near_optimal_cost=near_cost,
            )
    return out


#: Table 2, keyed as ``TABLE2[delay][U] -> Table2Cell``.
#: delay keys: 1, 3, math.inf.
TABLE2: Dict[float, Dict[int, Table2Cell]] = _t2(
    [
        (1, (0, 0, 0.150, 0.150), (0, 0, 0.150, 0.150), (0, 0, 0.150, 0.150)),
        (2, (0, 0, 0.200, 0.200), (0, 0, 0.200, 0.200), (0, 0, 0.200, 0.200)),
        (3, (0, 0, 0.250, 0.250), (0, 0, 0.250, 0.250), (0, 0, 0.250, 0.250)),
        (4, (0, 0, 0.300, 0.300), (0, 0, 0.300, 0.300), (0, 0, 0.300, 0.300)),
        (5, (0, 0, 0.350, 0.350), (0, 0, 0.350, 0.350), (0, 0, 0.350, 0.350)),
        (6, (0, 0, 0.400, 0.400), (0, 0, 0.400, 0.400), (0, 0, 0.400, 0.400)),
        (7, (0, 0, 0.450, 0.450), (0, 0, 0.450, 0.450), (0, 0, 0.450, 0.450)),
        (8, (0, 0, 0.500, 0.500), (0, 0, 0.500, 0.500), (0, 0, 0.500, 0.500)),
        (9, (0, 0, 0.550, 0.550), (1, 0, 0.542, 0.550), (1, 0, 0.542, 0.550)),
        (10, (0, 0, 0.600, 0.600), (1, 0, 0.555, 0.600), (1, 0, 0.555, 0.600)),
        (20, (1, 0, 0.968, 1.100), (1, 0, 0.689, 1.100), (1, 0, 0.689, 1.100)),
        (30, (1, 0, 1.102, 1.600), (1, 0, 0.823, 1.600), (1, 0, 0.823, 1.600)),
        (40, (1, 0, 1.236, 2.100), (1, 0, 0.957, 2.100), (1, 0, 0.957, 2.100)),
        (50, (1, 0, 1.370, 2.600), (2, 2, 1.074, 1.074), (2, 2, 1.074, 1.074)),
        (60, (1, 0, 1.504, 3.100), (2, 2, 1.126, 1.126), (2, 2, 1.126, 1.126)),
        (70, (1, 0, 1.638, 3.600), (2, 2, 1.178, 1.178), (2, 2, 1.178, 1.178)),
        (80, (1, 1, 1.771, 1.771), (2, 2, 1.231, 1.231), (2, 2, 1.231, 1.231)),
        (90, (1, 1, 1.905, 1.905), (2, 2, 1.283, 1.283), (2, 2, 1.283, 1.283)),
        (100, (1, 1, 2.039, 2.039), (2, 2, 1.335, 1.335), (2, 2, 1.335, 1.335)),
        (200, (2, 1, 2.945, 3.379), (2, 2, 1.858, 1.858), (3, 3, 1.683, 1.683)),
        (300, (2, 2, 3.468, 3.468), (3, 2, 2.372, 2.381), (4, 3, 1.912, 1.918)),
        (400, (2, 2, 3.991, 3.991), (3, 3, 2.608, 2.608), (4, 4, 2.025, 2.025)),
        (500, (2, 2, 4.514, 4.514), (3, 3, 2.843, 2.843), (4, 4, 2.138, 2.138)),
        (600, (2, 2, 5.036, 5.036), (5, 3, 2.955, 3.079), (5, 5, 2.204, 2.204)),
        (700, (3, 2, 5.349, 5.559), (5, 5, 3.011, 3.011), (5, 5, 2.260, 2.260)),
        (800, (3, 2, 5.585, 6.082), (5, 5, 3.066, 3.066), (5, 5, 2.315, 2.315)),
        (900, (3, 2, 5.820, 6.604), (5, 5, 3.122, 3.122), (6, 6, 2.346, 2.346)),
        (1000, (3, 2, 6.056, 7.127), (5, 5, 3.177, 3.177), (6, 6, 2.374, 2.374)),
    ]
)

#: Figure 4: average total cost vs probability of moving, q in
#: [0.001, 0.5] (log axis); fixed c, U, V; delays 1, 2, 3, unbounded.
FIGURE4_PARAMS: Dict[str, float] = {
    "c": 0.01,
    "U": 100.0,
    "V": 1.0,
    "q_min": 0.001,
    "q_max": 0.5,
}

#: Figure 5: average total cost vs call arrival probability, c in
#: [0.001, 0.1] (log axis); fixed q, U, V; delays 1, 2, 3, unbounded.
FIGURE5_PARAMS: Dict[str, float] = {
    "q": 0.05,
    "U": 100.0,
    "V": 1.0,
    "c_min": 0.001,
    "c_max": 0.1,
}
