"""Regeneration of the paper's Figures 4 and 5.

Each figure plots the *optimal* average total cost (cost at the best
threshold for each x value) against a log-swept mobility parameter,
with one curve per paging-delay bound:

* Figure 4(a)/(b): cost vs probability of moving ``q`` in
  ``[0.001, 0.5]``, with ``c = 0.01, U = 100, V = 1``; 1-D and 2-D.
* Figure 5(a)/(b): cost vs call-arrival probability ``c`` in
  ``[0.001, 0.1]``, with ``q = 0.05, U = 100, V = 1``; 1-D and 2-D.

The paper's qualitative claims about these curves are encoded in
:func:`check_figure_shape` so tests and benches can verify the
reproduction has the right *shape*: monotone increase with the swept
parameter, strict ordering of the delay curves (delay 1 highest), and
most of the delay-1-to-unbounded gap closed by delay 2-3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.models import (
    MobilityModel,
    OneDimensionalModel,
    TwoDimensionalModel,
)
from ..core.parameters import CostParams, MobilityParams
from ..core.threshold import find_optimal_threshold
from . import paper_data

__all__ = [
    "FigureSeries",
    "DELAY_CURVES",
    "log_sweep",
    "compute_figure4",
    "compute_figure5",
    "check_figure_shape",
]

#: The four delay bounds plotted in every figure.
DELAY_CURVES: Tuple[float, ...] = (1, 2, 3, math.inf)

#: Search bound for per-point optimization.  Figure sweeps hit very low
#: c (0.001) with U/V = 100, where the unbounded-delay optimum can sit
#: beyond 50 rings.
_D_MAX = 120


@dataclass(frozen=True)
class FigureSeries:
    """One reproduced figure: x values and one y-series per delay."""

    name: str
    x_label: str
    x_values: List[float]
    #: ``curves[m]`` is the optimal total cost at each x, for delay m.
    curves: Dict[float, List[float]]
    #: ``thresholds[m]`` is the optimal threshold at each x.
    thresholds: Dict[float, List[int]]

    def curve_label(self, m: float) -> str:
        return "no delay bound" if m == math.inf else f"max delay = {int(m)}"

    def as_rows(self) -> Tuple[List[str], List[List[object]]]:
        """Flatten to (headers, rows) for rendering/CSV."""
        delays = list(self.curves)
        headers = [self.x_label]
        for m in delays:
            label = "inf" if m == math.inf else int(m)
            headers += [f"C_T(m={label})", f"d*(m={label})"]
        rows: List[List[object]] = []
        for i, x in enumerate(self.x_values):
            row: List[object] = [round(x, 6)]
            for m in delays:
                row += [self.curves[m][i], self.thresholds[m][i]]
            rows.append(row)
        return headers, rows


def log_sweep(lo: float, hi: float, points: int) -> List[float]:
    """``points`` log-spaced values from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    return list(np.logspace(math.log10(lo), math.log10(hi), points))


def _sweep(
    name: str,
    x_label: str,
    model_for: "callable",
    x_values: Sequence[float],
    costs: CostParams,
    delays: Sequence[float],
    d_max: int,
) -> FigureSeries:
    curves: Dict[float, List[float]] = {m: [] for m in delays}
    thresholds: Dict[float, List[int]] = {m: [] for m in delays}
    for x in x_values:
        model = model_for(x)
        for m in delays:
            solution = find_optimal_threshold(model, costs, m, d_max=d_max)
            curves[m].append(solution.total_cost)
            thresholds[m].append(solution.threshold)
    return FigureSeries(
        name=name,
        x_label=x_label,
        x_values=list(x_values),
        curves=curves,
        thresholds=thresholds,
    )


def compute_figure4(
    dimensions: int,
    points: int = 13,
    delays: Sequence[float] = DELAY_CURVES,
    d_max: int = _D_MAX,
) -> FigureSeries:
    """Figure 4(a) (``dimensions=1``) or 4(b) (``dimensions=2``).

    Optimal total cost vs probability of moving, log-swept.
    """
    params = paper_data.FIGURE4_PARAMS
    costs = CostParams(update_cost=params["U"], poll_cost=params["V"])
    c = params["c"]
    xs = log_sweep(params["q_min"], params["q_max"], points)
    model_cls = _model_class(dimensions)

    def model_for(q: float) -> MobilityModel:
        return model_cls(MobilityParams(move_probability=q, call_probability=c))

    panel = "a" if dimensions == 1 else "b"
    return _sweep(
        name=f"figure4{panel}",
        x_label="q",
        model_for=model_for,
        x_values=xs,
        costs=costs,
        delays=delays,
        d_max=d_max,
    )


def compute_figure5(
    dimensions: int,
    points: int = 13,
    delays: Sequence[float] = DELAY_CURVES,
    d_max: int = _D_MAX,
) -> FigureSeries:
    """Figure 5(a) (``dimensions=1``) or 5(b) (``dimensions=2``).

    Optimal total cost vs call arrival probability, log-swept.
    """
    params = paper_data.FIGURE5_PARAMS
    costs = CostParams(update_cost=params["U"], poll_cost=params["V"])
    q = params["q"]
    xs = log_sweep(params["c_min"], params["c_max"], points)
    model_cls = _model_class(dimensions)

    def model_for(c: float) -> MobilityModel:
        return model_cls(MobilityParams(move_probability=q, call_probability=c))

    panel = "a" if dimensions == 1 else "b"
    return _sweep(
        name=f"figure5{panel}",
        x_label="c",
        model_for=model_for,
        x_values=xs,
        costs=costs,
        delays=delays,
        d_max=d_max,
    )


def _model_class(dimensions: int):
    if dimensions == 1:
        return OneDimensionalModel
    if dimensions == 2:
        return TwoDimensionalModel
    raise ValueError(f"dimensions must be 1 or 2, got {dimensions}")


def check_figure_shape(figure: FigureSeries, tolerance: float = 1e-9) -> List[str]:
    """Verify the paper's qualitative claims; return a list of violations.

    Checked properties (Section 7 / Conclusions):

    1. every curve is non-decreasing in the swept parameter -- up to
       sub-percent dips: a higher call rate also *resets the chain more
       often*, lowering ``p_d`` and hence ``C_u``, so the optimal total
       can genuinely decrease by a few parts in 10^4 (observed at the
       top of the Figure 5 sweeps).  Dips below 0.5% relative are
       therefore not violations;
    2. at every x, cost is non-increasing in the delay bound
       (delay 1 >= delay 2 >= delay 3 >= unbounded);
    3. averaged over the sweep, moving from delay 1 to delay 2 closes
       at least a third of the gap between delay 1 and unbounded ("a
       small increase of the maximum delay from 1 to 2 polling cycles
       can lower the optimal cost to half way");
    4. delay 3 is close to unbounded (within 25% of the delay-1 gap).
    """
    problems: List[str] = []
    delays = sorted(figure.curves, key=lambda m: (m == math.inf, m))
    for m in delays:
        ys = figure.curves[m]
        for i in range(1, len(ys)):
            if ys[i] < ys[i - 1] - tolerance - 5e-3 * abs(ys[i - 1]):
                problems.append(
                    f"{figure.name}: curve m={m} decreases at "
                    f"{figure.x_label}={figure.x_values[i]:.4g} "
                    f"({ys[i - 1]:.4g} -> {ys[i]:.4g})"
                )
    for i in range(len(figure.x_values)):
        values = [figure.curves[m][i] for m in delays]
        for a, b in zip(values, values[1:]):
            if b > a + tolerance + 1e-6 * abs(a):
                problems.append(
                    f"{figure.name}: delay ordering violated at "
                    f"{figure.x_label}={figure.x_values[i]:.4g}"
                )
                break
    gaps_closed_2: List[float] = []
    gaps_closed_3: List[float] = []
    unbounded = figure.curves[math.inf]
    for i in range(len(figure.x_values)):
        gap = figure.curves[1][i] - unbounded[i]
        if gap <= tolerance:
            continue  # delay makes no difference here; skip the ratio
        gaps_closed_2.append((figure.curves[1][i] - figure.curves[2][i]) / gap)
        if 3 in figure.curves:
            gaps_closed_3.append((figure.curves[1][i] - figure.curves[3][i]) / gap)
    if gaps_closed_2 and float(np.mean(gaps_closed_2)) < 1.0 / 3.0:
        problems.append(
            f"{figure.name}: delay 2 closes only "
            f"{np.mean(gaps_closed_2):.0%} of the delay-1 gap on average"
        )
    if gaps_closed_3 and float(np.mean(gaps_closed_3)) < 0.75:
        problems.append(
            f"{figure.name}: delay 3 closes only "
            f"{np.mean(gaps_closed_3):.0%} of the delay-1 gap on average"
        )
    return problems
