"""ASCII rendering of hex-grid state around a center cell.

Terminal-friendly visualization of per-cell quantities on the paper's
hexagonal geometry: the steady-state residence distribution, a paging
plan's polling order, or any user-supplied cell->value mapping.  Used
by the CLI (`repro-lm show`) and the examples; staying ASCII keeps the
library dependency-free and the output diff-able in tests.

Axial cell ``(q, r)`` is drawn at column ``2q + r`` and row ``r`` (the
standard "double-width" hex layout), one character per cell, so rings
render as visually hexagonal bands::

        2 2 2
       2 1 1 2
      2 1 0 1 2
       2 1 1 2
        2 2 2
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.models import MobilityModel
from ..exceptions import ParameterError
from ..geometry import HexTopology
from ..paging.plan import PagingPlan

__all__ = ["render_hex_map", "render_ring_distances", "render_paging_order", "render_occupancy"]

#: Glyph ramp for quantized [0, 1] intensities, light to dark.
_RAMP = " .:-=+*#%@"


def render_hex_map(
    radius: int,
    cell_char: Callable[[tuple], str],
    center: tuple = (0, 0),
) -> str:
    """Render the radius-``radius`` hex disk with one glyph per cell.

    ``cell_char`` maps an axial cell to a single display character;
    longer strings are truncated to their first character and empty
    strings render as a space.
    """
    if radius < 0:
        raise ParameterError(f"radius must be >= 0, got {radius}")
    topo = HexTopology()
    rows: Dict[int, Dict[int, str]] = {}
    for cell in topo.disk(center, radius):
        q, r = cell[0] - center[0], cell[1] - center[1]
        col = 2 * q + r
        glyph = cell_char(cell)
        glyph = glyph[0] if glyph else " "
        rows.setdefault(r, {})[col] = glyph
    lines: List[str] = []
    min_col = min(col for row in rows.values() for col in row)
    for r in sorted(rows):
        row = rows[r]
        line = []
        for col in range(min_col, max(row) + 1):
            line.append(row.get(col, " "))
        lines.append("".join(line).rstrip())
    return "\n".join(lines)


def render_ring_distances(radius: int) -> str:
    """Figure 1(b) of the paper: each cell labeled with its ring index."""
    topo = HexTopology()

    def char(cell: tuple) -> str:
        distance = topo.distance((0, 0), cell)
        if distance < 10:
            return str(distance)
        return chr(ord("a") + distance - 10)

    return render_hex_map(radius, char)


def render_paging_order(plan: PagingPlan) -> str:
    """Each cell labeled with the polling cycle (1-based) that reaches it."""
    topo = HexTopology()

    def char(cell: tuple) -> str:
        ring = topo.distance((0, 0), cell)
        return str(plan.subarea_of_ring(ring) + 1)

    return render_hex_map(plan.threshold, char)


def render_occupancy(
    model: MobilityModel,
    d: int,
    ramp: str = _RAMP,
) -> str:
    """Per-cell steady-state occupancy of the residing area, as a heat map.

    Ring probability is divided by ring size (per-cell density) and
    normalized to the densest cell, then quantized onto ``ramp``.
    """
    if model.topology != HexTopology():
        raise ParameterError("occupancy rendering supports the hex geometry only")
    if not ramp:
        raise ParameterError("ramp must be non-empty")
    p = model.steady_state(d)
    densities = [p[i] / model.ring_size(i) for i in range(d + 1)]
    peak = max(densities)
    topo = model.topology

    def char(cell: tuple) -> str:
        ring = topo.distance((0, 0), cell)
        level = densities[ring] / peak if peak > 0 else 0.0
        index = min(int(level * (len(ramp) - 1) + 0.5), len(ramp) - 1)
        return ramp[index]

    return render_hex_map(d, char)
