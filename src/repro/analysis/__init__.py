"""Experiment drivers: tables, figures, sweeps, validation, reporting.

This layer turns the core library into the paper's evaluation section:
:mod:`~repro.analysis.tables` and :mod:`~repro.analysis.figures`
regenerate Tables 1-2 and Figures 4-5 (with the published values
embedded in :mod:`~repro.analysis.paper_data` for comparison),
:mod:`~repro.analysis.sweep` provides free-form parameter sweeps,
:mod:`~repro.analysis.validate` runs the simulation-vs-model campaign,
and :mod:`~repro.analysis.report` renders everything as text/CSV.
"""

from . import paper_data
from .compare import (
    SCHEMES,
    SchemeOutcome,
    TournamentPoint,
    TournamentResult,
    run_tournament,
)
from .crossover import CrossoverMap, compute_crossover_map
from .figures import (
    DELAY_CURVES,
    FigureSeries,
    check_figure_shape,
    compute_figure4,
    compute_figure5,
    log_sweep,
)
from .hexmap import (
    render_hex_map,
    render_occupancy,
    render_paging_order,
    render_ring_distances,
)
from .report import format_delay, render_ascii_plot, render_table, write_csv
from .sweep import (
    MODEL_CLASSES,
    GridSweepResult,
    SweepPoint,
    SweepResult,
    grid_sweep,
    sweep,
)
from .tables import (
    TABLE1_DELAYS,
    TABLE2_DELAYS,
    Table1Entry,
    Table2Entry,
    compute_table1,
    compute_table2,
    table1_rows,
    table2_rows,
)
from .validate import (
    DEFAULT_CASES,
    ValidationCase,
    ValidationOutcome,
    run_validation_campaign,
)

__all__ = [
    "CrossoverMap",
    "DELAY_CURVES",
    "DEFAULT_CASES",
    "FigureSeries",
    "MODEL_CLASSES",
    "GridSweepResult",
    "SCHEMES",
    "SchemeOutcome",
    "SweepPoint",
    "SweepResult",
    "TournamentPoint",
    "TournamentResult",
    "TABLE1_DELAYS",
    "TABLE2_DELAYS",
    "Table1Entry",
    "Table2Entry",
    "ValidationCase",
    "ValidationOutcome",
    "check_figure_shape",
    "compute_crossover_map",
    "compute_figure4",
    "compute_figure5",
    "compute_table1",
    "compute_table2",
    "format_delay",
    "log_sweep",
    "paper_data",
    "render_ascii_plot",
    "render_hex_map",
    "render_occupancy",
    "render_paging_order",
    "render_ring_distances",
    "render_table",
    "grid_sweep",
    "sweep",
    "run_tournament",
    "run_validation_campaign",
    "table1_rows",
    "table2_rows",
    "write_csv",
]
