"""Cross-scheme tournament: which location-management scheme wins where.

Drives every registered analytic scheme -- the paper's distance-based
scheme, the movement/timer baselines of reference [3], the static
location-area scheme of reference [8], and the jointly optimized
paging+registration policy of Hajek/Mitzel/Yang -- over a Cartesian
grid of operating points ``(q, c, U, V, m)`` and records, per point,
each scheme's optimized steady-state cost and the winning scheme.

The distance scheme rides the cached :func:`~repro.analysis.sweep.
grid_sweep` (which also defines the canonical row-major point order);
the blanket-paging baselines are the closed forms in
:mod:`repro.core.baselines`; the joint policy runs
:func:`~repro.strategies.jointly_optimal.optimize_joint_policy` at
every point.  The baselines blanket-page a single polling cycle, so
they satisfy any delay bound ``m >= 1`` and their costs do not vary
along the ``m`` axis.

Search bounds scale with ``d_max`` so small tournaments stay cheap:
distance and joint thresholds scan ``0..d_max``, movement thresholds
``1..d_max``, timer periods ``1..2 d_max``, LA radii ``0..d_max``.

Winners are decided by ascending scan over :data:`SCHEMES` with the
same ``1e-15`` strict-improvement rule the per-scheme searchers use,
so exact ties go to the earlier scheme in that canonical order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.baselines import (
    BaselineCosts,
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_timer_period,
)
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..strategies.jointly_optimal import optimize_joint_policy
from .sweep import MODEL_CLASSES, GridSweepResult, grid_sweep

__all__ = [
    "SCHEMES",
    "SchemeOutcome",
    "TournamentPoint",
    "TournamentResult",
    "run_tournament",
]

#: Canonical scheme order -- also the winner tie-break order.
SCHEMES: Tuple[str, ...] = (
    "distance",
    "movement",
    "timer",
    "location-area",
    "jointly-optimal",
)

_TIE_TOLERANCE = 1e-15


@dataclass(frozen=True)
class SchemeOutcome:
    """One scheme's optimized operating point at one grid point."""

    scheme: str
    #: The scheme's tuned parameter: threshold ``d`` (distance, joint),
    #: movement count ``M``, timer period ``T``, or LA radius ``n``.
    parameter: int
    update_cost: float
    paging_cost: float
    #: Extra description, e.g. the joint policy's paging-plan layout.
    detail: str = ""

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cost


@dataclass(frozen=True)
class TournamentPoint:
    """All schemes' outcomes at one ``(q, c, U, V, m)`` grid point."""

    q: float
    c: float
    update_cost: float
    poll_cost: float
    max_delay: float
    outcomes: Tuple[SchemeOutcome, ...]
    winner: str

    def outcome(self, scheme: str) -> SchemeOutcome:
        for entry in self.outcomes:
            if entry.scheme == scheme:
                return entry
        raise ParameterError(
            f"scheme {scheme!r} was not part of this tournament; "
            f"ran: {[entry.scheme for entry in self.outcomes]}"
        )


@dataclass(frozen=True)
class TournamentResult:
    """A solved tournament over a parameter grid.

    ``points`` follows :class:`~repro.analysis.sweep.GridSweepResult`'s
    row-major canonical ``(q, c, U, V, m)`` axis order.
    """

    model_name: str
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...]
    schemes: Tuple[str, ...]
    points: Tuple[TournamentPoint, ...]
    d_max: int
    convention: str
    #: True when the distance leg was served from the sweep cache.
    from_cache: bool = False

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(values) for _, values in self.axes)

    def winners(self) -> List[str]:
        """The winning scheme per grid point, row-major."""
        return [point.winner for point in self.points]

    def winner_counts(self) -> Dict[str, int]:
        """How many grid points each scheme wins (all schemes listed)."""
        counts = {scheme: 0 for scheme in self.schemes}
        for point in self.points:
            counts[point.winner] += 1
        return counts

    def cost_surface(self, scheme: str) -> List[float]:
        """One scheme's total cost per grid point, row-major."""
        return [point.outcome(scheme).total_cost for point in self.points]

    def to_payload(self) -> dict:
        """JSON-safe representation (``inf`` encoded as ``"inf"``)."""
        return {
            "model": self.model_name,
            "axes": [
                [name, [_json_safe(value) for value in values]]
                for name, values in self.axes
            ],
            "schemes": list(self.schemes),
            "d_max": self.d_max,
            "convention": self.convention,
            "winner_counts": self.winner_counts(),
            "points": [
                {
                    "q": point.q,
                    "c": point.c,
                    "U": point.update_cost,
                    "V": point.poll_cost,
                    "m": _json_safe(point.max_delay),
                    "winner": point.winner,
                    "outcomes": {
                        entry.scheme: {
                            "parameter": entry.parameter,
                            "total_cost": entry.total_cost,
                            "update_cost": entry.update_cost,
                            "paging_cost": entry.paging_cost,
                            "detail": entry.detail,
                        }
                        for entry in point.outcomes
                    },
                }
                for point in self.points
            ],
        }

    def rows(self) -> List[dict]:
        """Flat per-point rows for tables/CSV: one column per scheme."""
        out = []
        for point in self.points:
            row = {
                "q": point.q,
                "c": point.c,
                "U": point.update_cost,
                "V": point.poll_cost,
                "m": "inf" if point.max_delay == math.inf else point.max_delay,
                "winner": point.winner,
            }
            for entry in point.outcomes:
                row[entry.scheme] = entry.total_cost
                row[f"{entry.scheme}_param"] = entry.parameter
            out.append(row)
        return out


def _json_safe(value):
    if value == math.inf:
        return "inf"
    return value


def _pick_winner(outcomes: Sequence[SchemeOutcome]) -> str:
    winner = outcomes[0]
    for entry in outcomes[1:]:
        if entry.total_cost < winner.total_cost - _TIE_TOLERANCE:
            winner = entry
    return winner.scheme


def _baseline_outcome(result: BaselineCosts) -> SchemeOutcome:
    return SchemeOutcome(
        scheme=result.scheme,
        parameter=int(result.parameter),
        update_cost=float(result.update_cost),
        paging_cost=float(result.paging_cost),
    )


def run_tournament(
    model_name: str,
    axes: Dict[str, Sequence[float]],
    q: float = 0.05,
    c: float = 0.01,
    update_cost: float = 100.0,
    poll_cost: float = 10.0,
    max_delay=1,
    d_max: int = 100,
    convention: str = "paper",
    schemes: Optional[Sequence[str]] = None,
    workers: Optional[Union[int, str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> TournamentResult:
    """Run every scheme over the grid and crown a winner per point.

    Parameters mirror :func:`~repro.analysis.sweep.grid_sweep` (the
    distance leg *is* a grid sweep, including its on-disk cache);
    ``schemes`` restricts the field to a subset of :data:`SCHEMES`
    (``"distance"`` is always included -- it defines the grid).
    """
    if schemes is None:
        selected = SCHEMES
    else:
        unknown = sorted(set(schemes) - set(SCHEMES))
        if unknown:
            raise ParameterError(f"unknown schemes {unknown}; known: {list(SCHEMES)}")
        selected = tuple(s for s in SCHEMES if s in set(schemes) or s == "distance")

    sweep_result: GridSweepResult = grid_sweep(
        model_name,
        axes,
        q=q,
        c=c,
        update_cost=update_cost,
        poll_cost=poll_cost,
        max_delay=max_delay,
        d_max=d_max,
        convention=convention,
        workers=workers,
        cache_dir=cache_dir,
    )

    model_cls = MODEL_CLASSES[model_name]
    models: Dict[Tuple[float, float], object] = {}
    baseline_memo: Dict[tuple, List[SchemeOutcome]] = {}

    points: List[TournamentPoint] = []
    for sweep_point in sweep_result.points:
        mobility = MobilityParams(sweep_point.q, sweep_point.c)
        costs = CostParams(sweep_point.update_cost, sweep_point.poll_cost)
        model_key = (sweep_point.q, sweep_point.c)
        model = models.get(model_key)
        if model is None:
            model = models[model_key] = model_cls(mobility)
        topology = model.topology

        outcomes: List[SchemeOutcome] = [
            SchemeOutcome(
                scheme="distance",
                parameter=sweep_point.optimal_d,
                update_cost=sweep_point.update_component,
                paging_cost=sweep_point.paging_component,
            )
        ]

        # The blanket-paging baselines ignore m; memoize across the m
        # axis (and any duplicated grid values).
        baseline_key = (
            sweep_point.q,
            sweep_point.c,
            sweep_point.update_cost,
            sweep_point.poll_cost,
        )
        cached = baseline_memo.get(baseline_key)
        if cached is None:
            cached = []
            if "movement" in selected:
                cached.append(
                    _baseline_outcome(
                        optimal_movement_threshold(
                            topology, mobility, costs, max_threshold=max(1, d_max)
                        )
                    )
                )
            if "timer" in selected:
                cached.append(
                    _baseline_outcome(
                        optimal_timer_period(
                            topology, mobility, costs, max_period=2 * max(1, d_max)
                        )
                    )
                )
            if "location-area" in selected:
                cached.append(
                    _baseline_outcome(
                        optimal_la_radius(topology, mobility, costs, max_radius=d_max)
                    )
                )
            baseline_memo[baseline_key] = cached
        outcomes.extend(cached)

        if "jointly-optimal" in selected:
            # Sweep points store m as float; the solver wants int | inf.
            m = sweep_point.max_delay
            policy = optimize_joint_policy(
                model,
                costs,
                math.inf if m == math.inf else int(m),
                d_max=d_max,
                convention=convention,
            )
            outcomes.append(
                SchemeOutcome(
                    scheme="jointly-optimal",
                    parameter=policy.threshold,
                    update_cost=policy.update_cost,
                    paging_cost=policy.paging_cost,
                    detail=policy.plan.describe(),
                )
            )

        ordered = tuple(
            sorted(outcomes, key=lambda entry: selected.index(entry.scheme))
        )
        points.append(
            TournamentPoint(
                q=sweep_point.q,
                c=sweep_point.c,
                update_cost=sweep_point.update_cost,
                poll_cost=sweep_point.poll_cost,
                max_delay=sweep_point.max_delay,
                outcomes=ordered,
                winner=_pick_winner(ordered),
            )
        )

    return TournamentResult(
        model_name=model_name,
        axes=sweep_result.axes,
        schemes=selected,
        points=tuple(points),
        d_max=d_max,
        convention=convention,
        from_cache=sweep_result.from_cache,
    )
