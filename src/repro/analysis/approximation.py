"""Approximation-error report: analytic model vs simulated mobility truth.

The paper's 2-D analysis rests on two stacked approximations: the
ring-index chain aggregates cells into rings (exact on the line, a
ring-averaged approximation on the hex grid), and the simplified
Section 4.2 model further caps ring transitions.  Both are derived
under *memoryless, isotropic* per-slot movement.  This module measures
what happens to those predictions when the mobility process is not
memoryless: it simulates each :data:`MOBILITY_MODELS` preset (uniform
walk, CTRW with geometric / deterministic / hyperexponential /
truncated-Pareto residence times, and a drifted CTRW) against the
analytic exact and approximate models evaluated at the preset's
*effective* move rate, and reports relative errors and a normalized
agreement deviation per mobility model.

The structural result the conformance tier pins: the exponential
(geometric-residence) case must converge -- CTRW with memoryless
residence *is* the paper's walk -- while heavy-tailed residence and
directional drift are exactly the regimes where the analytic model's
error becomes material.  The report quantifies, rather than hides, the
model's domain of validity.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..core.costs import CostEvaluator
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry import HexTopology
from ..mobility.ctrw import MOBILITY_PRESETS, CTRWSpec, mobility_preset

__all__ = [
    "MOBILITY_MODELS",
    "ApproximationRow",
    "ApproximationReport",
    "approximation_report",
    "approximation_rows",
    "write_approximation_artifact",
]

#: Mobility processes the report simulates, in report order.
MOBILITY_MODELS: Tuple[str, ...] = MOBILITY_PRESETS

#: Relative band the normalized deviation falls back to when the
#: replication CI is tighter -- the same 5% criterion 2-D simulation
#: agreement uses everywhere else in the library.
_RELATIVE_BAND = 0.05


@dataclass(frozen=True)
class ApproximationRow:
    """One mobility model's simulated truth vs the analytic predictions.

    ``deviation`` is the normalized agreement deviation against the
    *exact* 2-D model: ``|simulated - exact|`` divided by the larger of
    the replication CI half-width and a 5% relative band -- at most 1.0
    means the analytic model still describes this mobility process at
    the library's standard agreement criterion (``converges``).
    """

    mobility: str
    q_effective: float
    residence_cv2: float
    simulated_cost: float
    ci_half_width: float
    exact_cost: float
    approx_cost: float
    exact_rel_error: float
    approx_rel_error: float
    deviation: float
    converges: bool


@dataclass(frozen=True)
class ApproximationReport:
    """The full table plus the operating point it was measured at."""

    rows: Tuple[ApproximationRow, ...]
    q: float
    c: float
    d: int
    m: int
    update_cost: float
    poll_cost: float
    slots: int
    terminals: int
    seed: int

    def row(self, mobility: str) -> ApproximationRow:
        for row in self.rows:
            if row.mobility == mobility:
                return row
        raise ParameterError(
            f"no row for mobility {mobility!r}; have "
            f"{[r.mobility for r in self.rows]}"
        )


def _relative_error(measured: float, predicted: float) -> float:
    if predicted == 0:
        return math.inf if measured else 0.0
    return abs(measured - predicted) / predicted


def approximation_report(
    q: float = 0.2,
    c: float = 0.02,
    d: int = 2,
    m: int = 2,
    update_cost: float = 50.0,
    poll_cost: float = 10.0,
    slots: int = 4000,
    terminals: int = 256,
    warmup_slots: int = 500,
    seed: int = 0,
    models: Sequence[str] = MOBILITY_MODELS,
    drift: float = 0.4,
    spec_factory=None,
) -> ApproximationReport:
    """Simulate each mobility preset and compare against the 2-D models.

    Every preset runs on the hex grid under a distance-``d`` strategy
    with delay bound ``m``; the analytic exact
    (:class:`~repro.core.models.TwoDimensionalModel`) and approximate
    (:class:`~repro.core.models.TwoDimensionalApproximateModel`) costs
    are evaluated at the preset's effective per-slot move rate (for a
    residence distribution with mean ``E[T]`` that is ``1/E[T]``), with
    the physical boundary convention -- the rate the simulator actually
    charges updates at.

    ``spec_factory`` overrides how preset names become
    :class:`CTRWSpec` instances (same signature as
    :func:`~repro.mobility.ctrw.mobility_preset`); the conformance
    test-suite uses it to prove the convergence check can fail.
    """
    from ..analysis.sweep import MODEL_CLASSES  # deferred: avoid cycle
    from ..simulation.vectorized import VectorizedDistanceEngine  # deferred

    unknown = [name for name in models if name not in MOBILITY_MODELS]
    if unknown:
        raise ParameterError(
            f"unknown mobility model(s) {unknown}; expected a subset of "
            f"{MOBILITY_MODELS}"
        )
    topology = HexTopology()
    costs = CostParams(update_cost=update_cost, poll_cost=poll_cost)
    mobility = MobilityParams(move_probability=q, call_probability=c)
    build_spec = spec_factory if spec_factory is not None else mobility_preset
    rows = []
    for index, name in enumerate(models):
        spec: Optional[CTRWSpec] = build_spec(name, q, drift=drift)
        if spec is None:
            q_eff = q
            # A uniform walk's cell residence time is geometric(q).
            cv2 = 1.0 - q
            engine = VectorizedDistanceEngine(
                topology,
                threshold=d,
                mobility=mobility,
                costs=costs,
                terminals=terminals,
                max_delay=m,
                seed=seed + 101 * index,
            )
        else:
            q_eff = spec.effective_move_probability()
            cv2 = spec.residence.cv2()
            engine = VectorizedDistanceEngine(
                topology,
                threshold=d,
                mobility=mobility,
                costs=costs,
                terminals=terminals,
                max_delay=m,
                seed=seed + 101 * index,
                walk=spec,
            )
        if warmup_slots:
            engine.run(warmup_slots)
            engine.reset_meters()
        result = engine.run(slots)
        measured = result.mean_total_cost
        ci = result.total_cost_ci()

        chain_mobility = MobilityParams(move_probability=q_eff, call_probability=c)
        exact = MODEL_CLASSES["2d-exact"](chain_mobility)
        approx = MODEL_CLASSES["2d-approx"](chain_mobility)
        exact_cost = CostEvaluator(exact, costs, convention="physical").total_cost(d, m)
        approx_cost = CostEvaluator(approx, costs, convention="physical").total_cost(
            d, m
        )
        band = max(ci if math.isfinite(ci) else 0.0, _RELATIVE_BAND * exact_cost)
        deviation = abs(measured - exact_cost) / band if band > 0 else math.inf
        rows.append(
            ApproximationRow(
                mobility=name,
                q_effective=q_eff,
                residence_cv2=cv2,
                simulated_cost=measured,
                ci_half_width=ci,
                exact_cost=exact_cost,
                approx_cost=approx_cost,
                exact_rel_error=_relative_error(measured, exact_cost),
                approx_rel_error=_relative_error(measured, approx_cost),
                deviation=deviation,
                converges=deviation <= 1.0,
            )
        )
    return ApproximationReport(
        rows=tuple(rows),
        q=q,
        c=c,
        d=d,
        m=m,
        update_cost=update_cost,
        poll_cost=poll_cost,
        slots=slots,
        terminals=terminals,
        seed=seed,
    )


def approximation_rows(report: ApproximationReport) -> list:
    """Render-ready rows for :func:`repro.analysis.report.render_table`."""
    return [
        [
            row.mobility,
            f"{row.q_effective:.4f}",
            f"{row.residence_cv2:.2f}",
            f"{row.simulated_cost:.4f}",
            f"{row.exact_cost:.4f}",
            f"{100 * row.exact_rel_error:.2f}%",
            f"{100 * row.approx_rel_error:.2f}%",
            f"{row.deviation:.2f}",
            "yes" if row.converges else "no",
        ]
        for row in report.rows
    ]


def write_approximation_artifact(
    path: Union[str, Path],
    report: ApproximationReport,
) -> Path:
    """Persist a report as a provenance-stamped JSONL artifact.

    One ``kind="approximation"`` record per mobility model, behind the
    standard provenance header -- the same file format (and
    :func:`~repro.observability.export.read_artifact` reader) the
    CLI's ``--metrics-out`` and conformance ``--report`` use.
    """
    from ..observability import context as _obs_context  # deferred
    from ..observability.export import build_provenance, write_artifact  # deferred

    provenance = build_provenance(
        "approx",
        params={
            "q": report.q,
            "c": report.c,
            "d": report.d,
            "m": report.m,
            "U": report.update_cost,
            "V": report.poll_cost,
            "slots": report.slots,
            "terminals": report.terminals,
            "models": ",".join(row.mobility for row in report.rows),
        },
        seed=report.seed,
    )
    records = [{"kind": "approximation", **asdict(row)} for row in report.rows]
    with _obs_context.session(metrics=False, trace=False) as obs:
        return write_artifact(path, obs, provenance, extra_records=records)
