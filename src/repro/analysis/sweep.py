"""Generic parameter sweeps over the analytical model.

The figure/table modules cover the paper's published experiments; this
module provides the free-form sweeps used by the ablation benches and
by downstream users exploring their own parameter regions.

Two entry points:

* :func:`sweep` -- one varied parameter, the rest fixed (the original
  API, kept verbatim for the figure benches);
* :func:`grid_sweep` -- the Cartesian product of any combination of
  ``(q, c, U, V, m)`` axes, solved point-by-point with the batched
  surface solver, optionally fanned out over a process pool
  (``workers=N``) and memoized in an on-disk content-addressed cache.

Every grid point is an independent analytic solve, so the pool needs no
coordination: results are keyed by row-major index and reassembled in
order, making ``workers=N`` output identical to a serial sweep for any
``N`` (the same guarantee, by the same construction, as
:func:`repro.simulation.runner.run_replicated`).

The cache is content-addressed: the file name is the SHA-256 of the
sweep's parameter fingerprint (model, axes, fixed values, ``d_max``,
convention), so distinct sweeps never collide and a repeated sweep is a
single JSON read.  The schema version lives *inside* the payload --
not in the digest -- so a stale-format file for the same sweep is
*found* and refused with a clear message rather than silently
recomputed, mirroring the simulation checkpoint contract.  Sweeps with
a custom ``plan_factory`` bypass the cache entirely: callables have no
stable fingerprint.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.costs import PlanFactory
from ..core.models import (
    MobilityModel,
    OneDimensionalModel,
    SquareGridApproximateModel,
    SquareGridModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)
from ..core.parameters import CostParams, MobilityParams, validate_delay
from ..core.threshold import find_optimal_threshold
from ..exceptions import ParameterError, SweepPointError
from ..observability.context import current as _observability
from ..persist import atomic_write_json
from ..simulation.runner import _resolve_workers

__all__ = [
    "SweepPoint",
    "SweepResult",
    "GridSweepResult",
    "sweep",
    "grid_sweep",
    "MODEL_CLASSES",
]

MODEL_CLASSES: Dict[str, type] = {
    "1d": OneDimensionalModel,
    "2d-exact": TwoDimensionalModel,
    "2d-approx": TwoDimensionalApproximateModel,
    "square-exact": SquareGridModel,
    "square-approx": SquareGridApproximateModel,
}

#: Canonical axis order.  Axes may be supplied in any order; the grid
#: is always enumerated row-major in *this* order so that point layout
#: (and the cache fingerprint) is independent of call-site spelling.
_GRID_PARAMS: Tuple[str, ...] = ("q", "c", "U", "V", "m")

#: Bump when the cached payload layout changes incompatibly.
_CACHE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """One solved grid point of a sweep."""

    q: float
    c: float
    update_cost: float
    poll_cost: float
    max_delay: float
    optimal_d: int
    total_cost: float
    update_component: float
    paging_component: float
    expected_delay: float


@dataclass(frozen=True)
class SweepResult:
    """All solved points plus the sweep's metadata."""

    model_name: str
    varied: str
    points: List[SweepPoint]

    def series(self, attribute: str) -> List[float]:
        """Extract one attribute across points (e.g. ``"total_cost"``)."""
        return [getattr(p, attribute) for p in self.points]


@dataclass(frozen=True)
class GridSweepResult:
    """A solved multi-axis sweep.

    ``axes`` lists the varied parameters in canonical ``(q, c, U, V,
    m)`` order with their value grids; ``points`` holds one
    :class:`SweepPoint` per Cartesian grid point, row-major in that
    same order (the last axis varies fastest).
    """

    model_name: str
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...]
    points: Tuple[SweepPoint, ...]
    d_max: int
    convention: str
    #: True when the points were served from the on-disk cache.
    from_cache: bool = False

    @property
    def shape(self) -> Tuple[int, ...]:
        """Grid extent per axis, in axis order."""
        return tuple(len(values) for _, values in self.axes)

    def axis_values(self, param: str) -> Tuple[float, ...]:
        """The value grid of one varied parameter."""
        for name, values in self.axes:
            if name == param:
                return values
        raise ParameterError(
            f"parameter {param!r} is not varied in this sweep; "
            f"axes: {[name for name, _ in self.axes]}"
        )

    def series(self, attribute: str) -> List[float]:
        """Extract one attribute across points (e.g. ``"total_cost"``)."""
        return [getattr(p, attribute) for p in self.points]


def _coerce_axis_value(param: str, value) -> float:
    """Validate and normalize one axis value."""
    if param == "m":
        return validate_delay(value)
    value = float(value)
    if not math.isfinite(value):
        raise ParameterError(f"axis {param!r} values must be finite, got {value}")
    return value


def _canonical_axes(
    axes: Dict[str, Sequence[float]],
) -> Tuple[Tuple[str, Tuple[float, ...]], ...]:
    """Validate the axes mapping and order it canonically."""
    if not axes:
        raise ParameterError("grid_sweep needs at least one axis to vary")
    unknown = sorted(set(axes) - set(_GRID_PARAMS))
    if unknown:
        raise ParameterError(
            f"unknown sweep parameter(s) {unknown}; "
            f"expected a subset of {list(_GRID_PARAMS)}"
        )
    ordered = []
    for param in _GRID_PARAMS:
        if param not in axes:
            continue
        values = tuple(_coerce_axis_value(param, v) for v in axes[param])
        if not values:
            raise ParameterError(f"axis {param!r} has no values")
        ordered.append((param, values))
    return tuple(ordered)


def _solve_grid_point(
    index: int,
    model_name: str,
    q: float,
    c: float,
    update_cost: float,
    poll_cost: float,
    max_delay,
    d_max: int,
    convention: str,
    plan_factory: Optional[PlanFactory],
) -> Tuple[int, SweepPoint]:
    """Solve one grid point for its optimal threshold.

    Module-level so worker processes can pickle and run it; both the
    serial and the pooled path go through this exact function, which is
    what makes ``workers=N`` output identical to a serial sweep.

    Any failure is re-raised as a :class:`SweepPointError` carrying the
    point's parameters: under a process pool, ``future.result()`` would
    otherwise surface the bare original exception with no way to tell
    which of the grid's points (or whose ``plan_factory`` call) was
    responsible.
    """
    point_params = {
        "index": index, "model": model_name, "q": q, "c": c,
        "U": update_cost, "V": poll_cost, "m": max_delay,
    }
    try:
        model_cls = MODEL_CLASSES[model_name]
        model: MobilityModel = model_cls(
            MobilityParams(move_probability=q, call_probability=c)
        )
        costs = CostParams(update_cost=update_cost, poll_cost=poll_cost)
        solution = find_optimal_threshold(
            model,
            costs,
            max_delay,
            d_max=d_max,
            plan_factory=plan_factory,
            convention=convention,
        )
    except SweepPointError:
        raise
    except Exception as exc:
        raise SweepPointError(
            f"grid point {point_params} failed to solve: {exc!r}",
            point_params,
        ) from exc
    return index, SweepPoint(
        q=q,
        c=c,
        update_cost=update_cost,
        poll_cost=poll_cost,
        max_delay=max_delay if max_delay == math.inf else float(max_delay),
        optimal_d=solution.threshold,
        total_cost=solution.total_cost,
        update_component=solution.update_cost,
        paging_component=solution.paging_cost,
        expected_delay=solution.breakdown.expected_delay,
    )


# ----------------------------------------------------------------------
# On-disk result cache


def _json_safe(value):
    """Encode a number for the fingerprint/payload (``inf`` -> ``"inf"``)."""
    if value == math.inf:
        return "inf"
    return value


def _json_restore(value):
    """Inverse of :func:`_json_safe`."""
    if value == "inf":
        return math.inf
    return value


def _grid_fingerprint(
    model_name: str,
    axes: Tuple[Tuple[str, Tuple[float, ...]], ...],
    fixed: Dict[str, float],
    d_max: int,
    convention: str,
) -> dict:
    """Everything that determines a grid sweep's output.

    ``workers`` is deliberately absent -- it never changes what a grid
    point computes.  The schema version is stored alongside (not used
    in the digest) so a format change on the *same* sweep is detected
    and refused rather than silently shadowed under a new file name.
    """
    return {
        "version": _CACHE_SCHEMA_VERSION,
        "model": model_name,
        "axes": [
            [param, [_json_safe(v) for v in values]] for param, values in axes
        ],
        "fixed": {key: _json_safe(value) for key, value in sorted(fixed.items())},
        "d_max": d_max,
        "convention": convention,
    }


def _cache_path(cache_dir: Path, fingerprint: dict) -> Path:
    """Content-addressed cache file for one sweep fingerprint."""
    addressed = {k: v for k, v in fingerprint.items() if k != "version"}
    digest = hashlib.sha256(
        json.dumps(addressed, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return cache_dir / f"grid-{digest[:32]}.json"


def _load_cached_points(
    path: Path, fingerprint: dict
) -> Optional[Tuple[SweepPoint, ...]]:
    """Read a cached sweep, validating that it belongs to this request.

    Returns None when the file does not exist; raises
    :class:`~repro.exceptions.ParameterError` when it exists but cannot
    be trusted (schema or fingerprint mismatch) -- silence there would
    hide stale results.
    """
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(
            f"unreadable sweep cache entry {path}: {exc}; delete the file "
            "or rerun with the cache disabled (--no-cache)"
        ) from exc
    stored = payload.get("fingerprint") or {}
    version = stored.get("version")
    if version != _CACHE_SCHEMA_VERSION:
        raise ParameterError(
            f"sweep cache entry {path} uses schema version {version!r}, but "
            f"this library writes version {_CACHE_SCHEMA_VERSION} and cannot "
            "read other layouts; delete the file (results are recomputed "
            "deterministically) or rerun with the cache disabled (--no-cache)"
        )
    if stored != fingerprint:
        raise ParameterError(
            f"sweep cache entry {path} belongs to a different sweep "
            "(model/axes/fixed parameters/d_max/convention differ); delete "
            "the file or rerun with the cache disabled (--no-cache)"
        )
    return tuple(
        SweepPoint(
            q=point["q"],
            c=point["c"],
            update_cost=point["update_cost"],
            poll_cost=point["poll_cost"],
            max_delay=_json_restore(point["max_delay"]),
            optimal_d=int(point["optimal_d"]),
            total_cost=point["total_cost"],
            update_component=point["update_component"],
            paging_component=point["paging_component"],
            expected_delay=point["expected_delay"],
        )
        for point in payload["points"]
    )


def _store_cached_points(
    path: Path, fingerprint: dict, points: Sequence[SweepPoint]
) -> None:
    """Atomically persist a solved sweep: write-to-temp + rename."""
    payload = {
        "fingerprint": fingerprint,
        "points": [
            {
                "q": p.q,
                "c": p.c,
                "update_cost": p.update_cost,
                "poll_cost": p.poll_cost,
                "max_delay": _json_safe(p.max_delay),
                "optimal_d": p.optimal_d,
                "total_cost": p.total_cost,
                "update_component": p.update_component,
                "paging_component": p.paging_component,
                "expected_delay": p.expected_delay,
            }
            for p in points
        ],
    }
    atomic_write_json(path, payload)


# ----------------------------------------------------------------------


def grid_sweep(
    model_name: str,
    axes: Dict[str, Sequence[float]],
    q: float = 0.05,
    c: float = 0.01,
    update_cost: float = 100.0,
    poll_cost: float = 10.0,
    max_delay=1,
    d_max: int = 100,
    convention: str = "paper",
    plan_factory: Optional[PlanFactory] = None,
    workers: Optional[Union[int, str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> GridSweepResult:
    """Solve the optimal threshold over a Cartesian parameter grid.

    Parameters
    ----------
    model_name:
        One of :data:`MODEL_CLASSES` (``"1d"``, ``"2d-exact"``, ...).
    axes:
        Mapping from parameter name (any subset of ``q``, ``c``,
        ``U``, ``V``, ``m``) to its value grid.  The grid is the
        Cartesian product, enumerated row-major in canonical
        ``(q, c, U, V, m)`` order regardless of mapping order.
    q, c, update_cost, poll_cost, max_delay:
        Values for the parameters *not* varied.
    workers:
        ``None``, ``1``, or ``"serial"`` solve in-process; an int > 1
        dispatches grid points to that many worker processes.  Points
        are reassembled by index, so the result is identical for any
        worker count.
    cache_dir:
        Directory for the on-disk result cache; ``None`` (default)
        disables caching.  A repeated sweep with the same parameters
        is served from disk (``from_cache=True``).  Ignored when
        ``plan_factory`` is given -- callables have no stable
        fingerprint, so such sweeps are always recomputed.
    """
    if model_name not in MODEL_CLASSES:
        raise ParameterError(
            f"unknown model {model_name!r}; known: {sorted(MODEL_CLASSES)}"
        )
    canonical = _canonical_axes(axes)
    pool_size = _resolve_workers(workers)
    fixed = {
        "q": q,
        "c": c,
        "U": update_cost,
        "V": poll_cost,
        "m": validate_delay(max_delay),
    }

    obs = _observability()
    cache_file: Optional[Path] = None
    fingerprint: Optional[dict] = None
    if cache_dir is not None and plan_factory is None:
        fingerprint = _grid_fingerprint(model_name, canonical, fixed, d_max, convention)
        cache_file = _cache_path(Path(cache_dir), fingerprint)
        cached = _load_cached_points(cache_file, fingerprint)
        if cached is not None:
            obs.registry.counter(
                "sweep_cache_hits_total", model=model_name
            ).inc()
            return GridSweepResult(
                model_name=model_name,
                axes=canonical,
                points=cached,
                d_max=d_max,
                convention=convention,
                from_cache=True,
            )
        obs.registry.counter(
            "sweep_cache_misses_total", model=model_name
        ).inc()

    # Row-major enumeration of the grid (last axis fastest).
    combos: List[Dict[str, float]] = [{}]
    for param, values in canonical:
        combos = [dict(combo, **{param: v}) for combo in combos for v in values]

    def job_args(index: int) -> tuple:
        combo = combos[index]
        return (
            index,
            model_name,
            combo.get("q", fixed["q"]),
            combo.get("c", fixed["c"]),
            combo.get("U", fixed["U"]),
            combo.get("V", fixed["V"]),
            combo.get("m", fixed["m"]),
            d_max,
            convention,
            plan_factory,
        )

    solved: Dict[int, SweepPoint] = {}
    with obs.tracer.span(
        "analysis.grid_sweep",
        model=model_name,
        points=len(combos),
        workers=pool_size or 1,
        d_max=d_max,
    ):
        if pool_size is None:
            for index in range(len(combos)):
                i, point = _solve_grid_point(*job_args(index))
                solved[i] = point
        else:
            try:
                pickle.dumps(plan_factory)
            except Exception as exc:
                raise ParameterError(
                    f"workers={workers!r} solves grid points in worker "
                    "processes, which requires a picklable plan_factory; pass "
                    "a module-level function rather than a lambda "
                    f"({exc})"
                ) from exc
            with ProcessPoolExecutor(
                max_workers=min(pool_size, len(combos))
            ) as pool:
                futures = [
                    pool.submit(_solve_grid_point, *job_args(index))
                    for index in range(len(combos))
                ]
                for future in as_completed(futures):
                    i, point = future.result()
                    solved[i] = point

    points = tuple(solved[i] for i in range(len(combos)))
    if cache_file is not None and fingerprint is not None:
        _store_cached_points(cache_file, fingerprint, points)
    return GridSweepResult(
        model_name=model_name,
        axes=canonical,
        points=points,
        d_max=d_max,
        convention=convention,
        from_cache=False,
    )


def sweep(
    model_name: str,
    varied: str,
    values: Sequence[float],
    q: float = 0.05,
    c: float = 0.01,
    update_cost: float = 100.0,
    poll_cost: float = 10.0,
    max_delay=1,
    d_max: int = 100,
    plan_factory: Optional[PlanFactory] = None,
) -> SweepResult:
    """Solve the optimal threshold along one varied parameter.

    A single-axis :func:`grid_sweep` with the original return type;
    kept as the stable API for the figure benches.

    Parameters
    ----------
    model_name:
        One of ``"1d"``, ``"2d-exact"``, ``"2d-approx"``.
    varied:
        Which parameter the ``values`` list replaces: ``"q"``, ``"c"``,
        ``"U"``, ``"V"``, or ``"m"``.
    values:
        The grid for the varied parameter.
    """
    if varied not in _GRID_PARAMS:
        raise ParameterError(f"varied must be one of q/c/U/V/m, got {varied!r}")
    grid = grid_sweep(
        model_name,
        {varied: values},
        q=q,
        c=c,
        update_cost=update_cost,
        poll_cost=poll_cost,
        max_delay=max_delay,
        d_max=d_max,
        plan_factory=plan_factory,
    )
    return SweepResult(
        model_name=model_name, varied=varied, points=list(grid.points)
    )
