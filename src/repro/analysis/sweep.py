"""Generic parameter sweeps over the analytical model.

The figure/table modules cover the paper's published experiments; this
module provides the free-form sweep used by the ablation benches and by
downstream users exploring their own parameter regions: any of
``(q, c, U, V, m)`` can vary, the rest stay fixed, and each grid point
is solved for its optimal threshold and cost decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.costs import CostEvaluator, PlanFactory
from ..core.models import (
    MobilityModel,
    OneDimensionalModel,
    SquareGridApproximateModel,
    SquareGridModel,
    TwoDimensionalApproximateModel,
    TwoDimensionalModel,
)
from ..core.parameters import CostParams, MobilityParams
from ..core.threshold import find_optimal_threshold
from ..exceptions import ParameterError

__all__ = ["SweepPoint", "SweepResult", "sweep", "MODEL_CLASSES"]

MODEL_CLASSES: Dict[str, type] = {
    "1d": OneDimensionalModel,
    "2d-exact": TwoDimensionalModel,
    "2d-approx": TwoDimensionalApproximateModel,
    "square-exact": SquareGridModel,
    "square-approx": SquareGridApproximateModel,
}


@dataclass(frozen=True)
class SweepPoint:
    """One solved grid point of a sweep."""

    q: float
    c: float
    update_cost: float
    poll_cost: float
    max_delay: float
    optimal_d: int
    total_cost: float
    update_component: float
    paging_component: float
    expected_delay: float


@dataclass(frozen=True)
class SweepResult:
    """All solved points plus the sweep's metadata."""

    model_name: str
    varied: str
    points: List[SweepPoint]

    def series(self, attribute: str) -> List[float]:
        """Extract one attribute across points (e.g. ``"total_cost"``)."""
        return [getattr(p, attribute) for p in self.points]


def sweep(
    model_name: str,
    varied: str,
    values: Sequence[float],
    q: float = 0.05,
    c: float = 0.01,
    update_cost: float = 100.0,
    poll_cost: float = 10.0,
    max_delay=1,
    d_max: int = 100,
    plan_factory: Optional[PlanFactory] = None,
) -> SweepResult:
    """Solve the optimal threshold along one varied parameter.

    Parameters
    ----------
    model_name:
        One of ``"1d"``, ``"2d-exact"``, ``"2d-approx"``.
    varied:
        Which parameter the ``values`` list replaces: ``"q"``, ``"c"``,
        ``"U"``, ``"V"``, or ``"m"``.
    values:
        The grid for the varied parameter.
    """
    if model_name not in MODEL_CLASSES:
        raise ParameterError(
            f"unknown model {model_name!r}; known: {sorted(MODEL_CLASSES)}"
        )
    if varied not in ("q", "c", "U", "V", "m"):
        raise ParameterError(f"varied must be one of q/c/U/V/m, got {varied!r}")
    model_cls = MODEL_CLASSES[model_name]
    points: List[SweepPoint] = []
    for value in values:
        point_q = value if varied == "q" else q
        point_c = value if varied == "c" else c
        point_u = value if varied == "U" else update_cost
        point_v = value if varied == "V" else poll_cost
        point_m = value if varied == "m" else max_delay
        model: MobilityModel = model_cls(
            MobilityParams(move_probability=point_q, call_probability=point_c)
        )
        costs = CostParams(update_cost=point_u, poll_cost=point_v)
        solution = find_optimal_threshold(
            model, costs, point_m, d_max=d_max, plan_factory=plan_factory
        )
        points.append(
            SweepPoint(
                q=point_q,
                c=point_c,
                update_cost=point_u,
                poll_cost=point_v,
                max_delay=point_m if point_m == math.inf else float(point_m),
                optimal_d=solution.threshold,
                total_cost=solution.total_cost,
                update_component=solution.update_cost,
                paging_component=solution.paging_cost,
                expected_delay=solution.breakdown.expected_delay,
            )
        )
    return SweepResult(model_name=model_name, varied=varied, points=points)
