"""Plain-text rendering of tables, series, and ASCII plots.

Everything the benches print flows through here, so reproduction output
has one consistent look: fixed-width aligned tables with a title line,
and log-x ASCII line charts for the figure series (the closest honest
terminal rendering of the paper's log-axis plots).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_ascii_plot", "format_delay", "write_csv"]


def format_delay(m) -> str:
    """Human-readable delay bound: ``inf`` prints as 'unbounded'."""
    return "unbounded" if m == math.inf else str(int(m))


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned fixed-width table.

    Floats are shown with 3 decimals (matching the paper's precision);
    everything else uses ``str``.
    """
    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return "-" if math.isnan(value) else f"{value:.3f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_ascii_plot(
    series: Dict[str, List[float]],
    x_values: Sequence[float],
    title: str = "",
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
) -> str:
    """Render multiple series as an ASCII line chart.

    Each series gets a marker character; x may be log-scaled (the
    paper's figures use log axes for ``q`` and ``c``).
    """
    markers = "ox+*#@%&"
    xs = list(x_values)
    if not xs or not series:
        return title
    if log_x and any(x <= 0 for x in xs):
        raise ValueError("log_x requires strictly positive x values")
    tx = [math.log10(x) for x in xs] if log_x else list(xs)
    x_lo, x_hi = min(tx), max(tx)
    ys_all = [y for ys in series.values() for y in ys if not math.isnan(y)]
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(tx, ys):
            if math.isnan(y):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.3f} +" + "-" * width + "+")
    left = f"{xs[0]:g}"
    right = f"{xs[-1]:g}"
    axis_label = " " * 12 + left + " " * max(1, width - len(left) - len(right)) + right
    lines.append(axis_label + ("   (log x)" if log_x else ""))
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def write_csv(
    path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write rows to ``path`` as a simple CSV (no quoting needed here)."""
    import csv
    from pathlib import Path

    with Path(path).open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
