"""Scheme-crossover maps over the (q, c) parameter plane.

The baseline ablation found that the paper's distance-based scheme does
not dominate movement-based updating everywhere at delay bound 1 (see
EXPERIMENTS.md, ABL-ANALYTIC): the winner depends on where a user sits
in the ``(q, c)`` plane.  This module computes the winner over a log
grid and renders the region map, turning a scatter of comparisons into
the actual decision boundary an operator could use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.baselines import (
    optimal_la_radius,
    optimal_movement_threshold,
    optimal_timer_period,
)
from ..core.movement_chain import optimal_staged_movement_threshold
from ..core.models import MobilityModel, TwoDimensionalModel
from ..core.parameters import CostParams, MobilityParams
from ..core.threshold import find_optimal_threshold
from ..exceptions import ParameterError
from ..geometry import HexTopology

__all__ = ["CrossoverMap", "compute_crossover_map"]

#: Scheme name -> single-character map glyph.
_GLYPHS = {"distance": "D", "movement": "M", "timer": "T", "location-area": "L"}


@dataclass(frozen=True)
class CrossoverMap:
    """Winner-per-cell map over a (q, c) grid."""

    q_values: List[float]
    c_values: List[float]
    #: ``winners[i][j]`` is the cheapest scheme at ``(q_values[i], c_values[j])``.
    winners: List[List[str]]
    #: Parallel structure with the winner's total cost.
    costs: List[List[float]]

    def winner_at(self, qi: int, cj: int) -> str:
        return self.winners[qi][cj]

    def share(self, scheme: str) -> float:
        """Fraction of grid cells won by ``scheme``."""
        cells = [w for row in self.winners for w in row]
        return cells.count(scheme) / len(cells)

    def render(self) -> str:
        """ASCII region map: rows = q (descending), columns = c."""
        lines: List[str] = []
        header = "q \\ c   " + " ".join(f"{c:7.3f}" for c in self.c_values)
        lines.append(header)
        for qi in range(len(self.q_values) - 1, -1, -1):
            glyphs = "       ".join(
                _GLYPHS.get(self.winners[qi][cj], "?")
                for cj in range(len(self.c_values))
            )
            lines.append(f"{self.q_values[qi]:6.3f}  {glyphs}")
        legend = "  ".join(f"{glyph}={name}" for name, glyph in _GLYPHS.items())
        lines.append(legend)
        return "\n".join(lines)


def compute_crossover_map(
    costs: CostParams,
    q_values: Sequence[float],
    c_values: Sequence[float],
    max_delay=1,
    d_max: int = 50,
) -> CrossoverMap:
    """Winner map over the grid, hex geometry, each scheme optimally tuned.

    The comparison is fair at every delay bound: the distance scheme
    uses its SDF partition at ``max_delay`` and the movement scheme
    uses the joint (count, ring) chain of
    :mod:`repro.core.movement_chain` with SDF paging at the same bound.
    Timer and LA keep their natural blanket/whole-LA paging (staging an
    elapsed-time disk or an LA is possible but those schemes never win
    regardless).
    """
    if not q_values or not c_values:
        raise ParameterError("q_values and c_values must be non-empty")
    topology = HexTopology()
    winners: List[List[str]] = []
    cost_grid: List[List[float]] = []
    for q in q_values:
        winner_row: List[str] = []
        cost_row: List[float] = []
        for c in c_values:
            if q + c > 1.0:
                raise ParameterError(f"infeasible grid point q={q}, c={c}")
            mobility = MobilityParams(q, c)
            candidates: Dict[str, float] = {}
            candidates["distance"] = find_optimal_threshold(
                TwoDimensionalModel(mobility),
                costs,
                max_delay,
                d_max=d_max,
                convention="physical",
            ).total_cost
            if max_delay == 1:
                candidates["movement"] = optimal_movement_threshold(
                    topology, mobility, costs
                ).total_cost
            else:
                candidates["movement"] = optimal_staged_movement_threshold(
                    topology, mobility, costs, max_delay, max_threshold=40
                ).total_cost
            candidates["timer"] = optimal_timer_period(
                topology, mobility, costs
            ).total_cost
            candidates["location-area"] = optimal_la_radius(
                topology, mobility, costs
            ).total_cost
            best = min(candidates, key=lambda name: (candidates[name], name))
            winner_row.append(best)
            cost_row.append(candidates[best])
        winners.append(winner_row)
        cost_grid.append(cost_row)
    return CrossoverMap(
        q_values=list(q_values),
        c_values=list(c_values),
        winners=winners,
        costs=cost_grid,
    )
