"""Location-update strategies: the paper's scheme and its baselines.

* :class:`DistanceStrategy` -- the paper's distance-based scheme with
  delay-constrained SDF paging (Section 2.2);
* :class:`MovementStrategy` / :class:`TimerStrategy` -- the
  movement-based and time-based baselines of reference [3];
* :class:`LocationAreaStrategy` -- the static LA scheme of
  reference [8];
* :class:`DynamicStrategy` -- per-user online threshold adaptation in
  the spirit of reference [1];
* :class:`JointlyOptimalStrategy` -- jointly optimized paging +
  registration via the Hajek/Mitzel/Yang alternating algorithm.

All implement :class:`UpdateStrategy` and are registered by name for
the CLI and benches.
"""

from .base import UpdateStrategy, create_strategy, register_strategy, strategy_names
from .distance import DistanceStrategy
from .dynamic import DynamicStrategy
from .jointly_optimal import (
    JointIteration,
    JointlyOptimalStrategy,
    JointPolicy,
    adapt_plan,
    exact_model_for_topology,
    optimize_joint_policy,
)
from .location_area import (
    LocationAreaStrategy,
    hex_la_center,
    line_la_index,
    square_la_center,
)
from .movement import MovementStrategy
from .timer import TimerStrategy

__all__ = [
    "DistanceStrategy",
    "DynamicStrategy",
    "JointIteration",
    "JointPolicy",
    "JointlyOptimalStrategy",
    "LocationAreaStrategy",
    "MovementStrategy",
    "TimerStrategy",
    "UpdateStrategy",
    "adapt_plan",
    "create_strategy",
    "exact_model_for_topology",
    "hex_la_center",
    "line_la_index",
    "optimize_joint_policy",
    "register_strategy",
    "square_la_center",
    "strategy_names",
]
