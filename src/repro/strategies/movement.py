"""Movement-based update strategy (Bar-Noy, Kessler & Sidi, ref [3]).

The terminal counts cell crossings since the last time the network
learned its position, and updates when the count reaches ``M``.  The
location uncertainty after ``k`` movements is the radius-``k`` disk
around the last known cell (a walk of ``k`` steps cannot travel more
than ``k`` rings), so the paging area grows with the movement count --
wasteful when the walk oscillates, which is exactly the weakness the
distance-based scheme fixes and the strategy bench quantifies.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..core.parameters import validate_delay
from ..exceptions import ParameterError
from ..geometry.topology import Cell
from ..paging import sdf_partition
from .base import UpdateStrategy, register_strategy

__all__ = ["MovementStrategy"]


class MovementStrategy(UpdateStrategy):
    """Update after every ``movement_threshold`` cell crossings.

    Parameters
    ----------
    movement_threshold:
        ``M >= 1``; the update fires on the ``M``-th movement.
    max_delay:
        Paging delay bound for the SDF partition of the uncertainty
        disk at call time.
    """

    name = "movement"

    def __init__(self, movement_threshold: int, max_delay=1) -> None:
        super().__init__()
        if isinstance(movement_threshold, bool) or not isinstance(movement_threshold, int):
            raise ParameterError(
                f"movement_threshold must be an int, got {movement_threshold!r}"
            )
        if movement_threshold < 1:
            raise ParameterError(
                f"movement_threshold must be >= 1, got {movement_threshold}"
            )
        self.movement_threshold = movement_threshold
        self.max_delay = validate_delay(max_delay)
        self._moves_since_known = 0

    def _reset_state(self, position: Cell) -> None:
        self._moves_since_known = 0

    @property
    def moves_since_known(self) -> int:
        """Cell crossings since the network last pinpointed the terminal."""
        return self._moves_since_known

    def on_move(self, position: Cell) -> bool:
        self._moves_since_known += 1
        return self._moves_since_known >= self.movement_threshold

    def uncertainty_radius(self) -> int:
        """Maximum ring distance the terminal can be from the known cell."""
        # The counter never exceeds M - 1 at call time: reaching M
        # triggers an update which resets it.
        return self._moves_since_known

    def polling_groups(self) -> Iterator[List[Cell]]:
        radius = self.uncertainty_radius()
        plan = sdf_partition(radius, self.max_delay)
        topo = self.topology
        center = self.last_known
        for group in plan.subareas:
            cells: List[Cell] = []
            for ring in group:
                cells.extend(topo.ring(center, ring))
            yield cells

    def worst_case_delay(self) -> int:
        if self.max_delay == math.inf:
            return self.movement_threshold  # one ring per cycle, radius <= M - 1
        return int(self.max_delay)

    def __repr__(self) -> str:
        return (
            f"MovementStrategy(movement_threshold={self.movement_threshold}, "
            f"max_delay={self.max_delay})"
        )


register_strategy("movement", MovementStrategy)
