"""Dynamic per-user threshold adaptation (Akyildiz & Ho, ref [1]).

Reference [1] of the paper determines the location update policy
on-line from data the terminal observes, with minimal computation so it
"can be implemented in mobile terminals that have limited computing
power".  This strategy realizes that idea on top of the paper's own
machinery:

* the terminal maintains exponentially weighted moving averages of its
  per-slot movement and call-arrival rates (``q_hat``, ``c_hat``);
* every ``recompute_interval`` location-fix events it re-optimizes the
  threshold using the cheap closed-form model for its geometry (1-D
  closed form, or the Section 4.2 approximate 2-D model -- exactly the
  computation-constrained path the paper designed the near-optimal
  scheme for);
* between recomputations it behaves as a plain distance-based scheme.

This demonstrates the paper's concluding claim that its results "can
also be used in dynamic schemes such that location update threshold
distance is determined continuously on a per-user basis".
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..core.costs import CostEvaluator
from ..core.models import OneDimensionalModel, TwoDimensionalApproximateModel
from ..core.optimizers import exhaustive_search
from ..core.parameters import CostParams, MobilityParams, validate_delay
from ..exceptions import ParameterError
from ..geometry import LineTopology
from ..geometry.topology import Cell, CellTopology
from ..paging import sdf_partition
from .base import UpdateStrategy, register_strategy

__all__ = ["DynamicStrategy"]


class DynamicStrategy(UpdateStrategy):
    """Distance-based updating with an online-adapted threshold.

    Parameters
    ----------
    costs:
        The ``(U, V)`` cost weights the optimization minimizes.
    max_delay:
        Paging delay bound ``m``.
    initial_threshold:
        Threshold used until the first recomputation.
    smoothing:
        EWMA weight of each new slot observation, in ``(0, 1)``;
        smaller adapts more slowly but estimates more stably.
    recompute_interval:
        Number of location-fix events (updates or calls) between
        threshold re-optimizations.
    d_max:
        Search bound for the re-optimization.
    """

    name = "dynamic"

    def __init__(
        self,
        costs: CostParams,
        max_delay=1,
        initial_threshold: int = 1,
        smoothing: float = 0.01,
        recompute_interval: int = 10,
        d_max: int = 50,
    ) -> None:
        super().__init__()
        if not 0.0 < smoothing < 1.0:
            raise ParameterError(f"smoothing must be in (0, 1), got {smoothing}")
        if recompute_interval < 1:
            raise ParameterError(
                f"recompute_interval must be >= 1, got {recompute_interval}"
            )
        if initial_threshold < 0:
            raise ParameterError(
                f"initial_threshold must be >= 0, got {initial_threshold}"
            )
        self.costs = costs
        self.max_delay = validate_delay(max_delay)
        self.threshold = initial_threshold
        self.smoothing = smoothing
        self.recompute_interval = recompute_interval
        self.d_max = d_max
        self.q_hat: Optional[float] = None
        self.c_hat: Optional[float] = None
        self._fixes_since_recompute = 0
        self._previous_position: Optional[Cell] = None
        self.recomputations = 0

    # -- estimation ------------------------------------------------------

    def _observe(self, moved: bool, called: bool) -> None:
        w = self.smoothing
        move_sample = 1.0 if moved else 0.0
        call_sample = 1.0 if called else 0.0
        self.q_hat = move_sample if self.q_hat is None else (1 - w) * self.q_hat + w * move_sample
        self.c_hat = call_sample if self.c_hat is None else (1 - w) * self.c_hat + w * call_sample

    def on_slot(self, position: Cell, slot: int) -> bool:
        moved = self._previous_position is not None and position != self._previous_position
        # Call arrivals are observed in on_location_known via the engine
        # paging path; the slot hook only sees movement.  We estimate c
        # from fix events instead (see _note_call).
        self._observe(moved, False)
        self._previous_position = position
        return False

    def _note_call(self) -> None:
        # Convert the EWMA of calls to the same per-slot basis: one
        # call observed "now"; weight it like a slot sample.
        w = self.smoothing
        self.c_hat = w if self.c_hat is None else (1 - w) * self.c_hat + w

    # -- policy ------------------------------------------------------------

    def _reset_state(self, position: Cell) -> None:
        self._fixes_since_recompute += 1
        if self._fixes_since_recompute >= self.recompute_interval:
            self._fixes_since_recompute = 0
            self._recompute_threshold()

    def _recompute_threshold(self) -> None:
        if not self.q_hat or self.q_hat <= 0.0:
            return  # no movement observed yet; keep the current policy
        q = min(max(self.q_hat, 1e-6), 1.0)
        c = min(max(self.c_hat or 0.0, 0.0), 0.999)
        if q + c > 1.0:
            q = 1.0 - c
        if q <= 0.0:
            return
        mobility = MobilityParams(move_probability=q, call_probability=c)
        model = self._model_for(mobility)
        evaluator = CostEvaluator(model, self.costs)
        result = exhaustive_search(
            lambda d: evaluator.total_cost(d, self.max_delay), self.d_max
        )
        self.threshold = result.optimal_threshold
        self.recomputations += 1

    def _model_for(self, mobility: MobilityParams):
        if isinstance(self.topology, LineTopology):
            return OneDimensionalModel(mobility)
        # Hex geometry: use the cheap approximate model, the paper's
        # recommended path for computation-constrained recomputation.
        return TwoDimensionalApproximateModel(mobility)

    def on_move(self, position: Cell) -> bool:
        return self.topology.distance(self.last_known, position) > self.threshold

    def on_location_known(self, position: Cell) -> None:
        super().on_location_known(position)

    def polling_groups(self) -> Iterator[List[Cell]]:
        self._note_call()
        plan = sdf_partition(self.threshold, self.max_delay)
        topo = self.topology
        center = self.last_known
        for group in plan.subareas:
            cells: List[Cell] = []
            for ring in group:
                cells.extend(topo.ring(center, ring))
            yield cells

    def worst_case_delay(self) -> Optional[int]:
        if self.max_delay == float("inf"):
            return None  # threshold adapts, so the per-ring bound varies
        return int(self.max_delay)

    def __repr__(self) -> str:
        return (
            f"DynamicStrategy(threshold={self.threshold}, q_hat={self.q_hat}, "
            f"c_hat={self.c_hat}, max_delay={self.max_delay})"
        )


register_strategy("dynamic", DynamicStrategy)
