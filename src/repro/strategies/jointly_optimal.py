"""Jointly optimal paging + registration by alternating minimization.

Hajek, Mitzel & Yang (PAPERS.md, cs/0702102) prove that jointly optimal
paging and registration policies can be found by an iterative algorithm
that alternates two exactly-solvable subproblems: optimize the paging
policy against the registration policy's conditional location
distribution, then optimize the registration policy against the paging
policy.  This module realizes that algorithm on the paper's
ring-distance Markov chain, where a policy pair is

* a **registration set**: the distance threshold ``d`` (report when the
  ring distance exceeds ``d``), and
* a **paging order**: a contiguous partition of rings ``0..d`` into at
  most ``m`` polling groups (a :class:`~repro.paging.PagingPlan`).

The two coordinate steps are:

paging step
    Given ``d``, the conditional location law is the chain's steady
    state ``p_{0,d}..p_{d,d}``; the optimal order polls ring groups by
    the dynamic program of
    :func:`repro.paging.optimal.optimal_contiguous_partition` --
    exactly solvable, so the step never worsens the cost.

registration step
    Given the paging policy, scan every threshold ``d'`` in
    ``0..d_max`` with the incumbent plan *adapted* to ``d'`` (rings
    beyond ``d'`` dropped; new rings appended as extra polling groups
    while the delay bound allows, else merged into the last group).
    The incumbent ``(d, plan)`` is one of the candidates, so this step
    never worsens the cost either.

Convergence criterion (documented contract):

* the per-iteration total cost ``C_T`` is **monotone non-increasing**
  -- each step minimizes over a family containing the incumbent, and a
  belt-and-braces guard refuses any step that would raise the cost;
* iteration 0 is the paper's distance-optimal operating point
  ``(d*, SDF)``, so the converged cost can never exceed the
  distance-based ``C_T(d*, m)`` -- the dominance relation the
  conformance suite pins;
* the loop stops when one full sweep improves the cost by at most
  ``tol``, or after ``max_iterations`` sweeps (bounded iteration
  count).

Steady states come from the batched triangular solver of
:mod:`repro.core.batch` (one solve covers every candidate threshold);
models without threshold-invariant rates fall back to per-threshold
scalar solves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.models import (
    MobilityModel,
    OneDimensionalModel,
    SquareGridModel,
    TwoDimensionalModel,
)
from ..core.parameters import (
    CostParams,
    MobilityParams,
    validate_delay,
    validate_threshold,
)
from ..core.threshold import DEFAULT_MAX_THRESHOLD, find_optimal_threshold
from ..exceptions import ParameterError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.topology import Cell, CellTopology
from ..paging import PagingPlan, partition_from_sizes, sdf_partition, subarea_count
from ..paging.optimal import optimal_contiguous_partition
from .base import register_strategy
from .distance import DistanceStrategy

__all__ = [
    "JointIteration",
    "JointPolicy",
    "JointlyOptimalStrategy",
    "adapt_plan",
    "exact_model_for_topology",
    "optimize_joint_policy",
]

#: Minimum strict improvement for the registration step to move the
#: threshold -- the same tie tolerance the exhaustive distance searcher
#: uses, so degenerate instances tie-break identically.
_TIE_TOLERANCE = 1e-15


@dataclass(frozen=True)
class JointIteration:
    """One accepted sweep of the alternating minimization."""

    iteration: int
    threshold: int
    plan: PagingPlan
    total_cost: float


@dataclass(frozen=True)
class JointPolicy:
    """A converged jointly-optimized (registration, paging) policy pair."""

    threshold: int
    plan: PagingPlan
    max_delay: float
    update_cost: float
    paging_cost: float
    expected_polled_cells: float
    expected_delay: float
    #: Accepted operating points, starting with iteration 0 = the
    #: distance-optimal ``(d*, SDF)`` initialization.
    history: Tuple[JointIteration, ...]
    converged: bool
    #: The distance-based optimum the iteration started from.
    baseline_threshold: int
    baseline_cost: float

    @property
    def total_cost(self) -> float:
        """``C_T = C_u + C_v`` of the joint policy."""
        return self.update_cost + self.paging_cost

    @property
    def iterations(self) -> int:
        """Number of full alternation sweeps performed."""
        return len(self.history) - 1

    def cost_history(self) -> List[float]:
        """Per-iteration total costs (monotone non-increasing)."""
        return [step.total_cost for step in self.history]


def _plan_sizes(plan: PagingPlan) -> List[int]:
    """Group sizes of a contiguous plan, validating contiguity."""
    expected = 0
    sizes: List[int] = []
    for group in plan.subareas:
        if list(group) != list(range(expected, expected + len(group))):
            raise ParameterError(
                "joint optimization requires contiguous distance-ordered "
                f"paging plans, got {plan.describe()!r}"
            )
        sizes.append(len(group))
        expected += len(group)
    return sizes


def adapt_plan(plan: PagingPlan, d_new: int, m) -> PagingPlan:
    """Re-fit a contiguous plan to a different threshold.

    Shrinking drops the rings beyond ``d_new`` (empty groups vanish);
    growing appends each new ring as its own polling group while the
    delay bound ``m`` allows more groups, then merges the remainder
    into the last group.  Used by the registration step to hold the
    paging *policy* fixed while the registration set varies.
    """
    d_new = validate_threshold(d_new)
    m = validate_delay(m)
    sizes = _plan_sizes(plan)
    if d_new == plan.threshold:
        return plan
    if d_new < plan.threshold:
        remaining = d_new + 1
        shrunk: List[int] = []
        for size in sizes:
            take = min(size, remaining)
            if take:
                shrunk.append(take)
            remaining -= take
            if remaining <= 0:
                break
        return partition_from_sizes(d_new, shrunk)
    max_groups = subarea_count(d_new, m)
    grown = list(sizes)
    for _ring in range(plan.threshold + 1, d_new + 1):
        if len(grown) < max_groups:
            grown.append(1)
        else:
            grown[-1] += 1
    return partition_from_sizes(d_new, grown)


class _JointEvaluator:
    """Analytic ``C_T(d, plan)`` for arbitrary contiguous plans.

    Steady states are served from one batched triangular solve
    (:func:`repro.core.batch.batched_steady_states`) when the model's
    rates are threshold-invariant; otherwise each threshold's row is a
    memoized scalar solve.  Update costs follow eqn (61) with the
    requested boundary convention, paging costs eqns (62)-(65) with the
    plan's own grouping.
    """

    def __init__(
        self, model: MobilityModel, costs: CostParams, d_max: int, convention: str
    ) -> None:
        self.model = model
        self.costs = costs
        self.d_max = d_max
        self.convention = convention
        self._rows: Dict[int, np.ndarray] = {}
        self._steady = None
        if getattr(model, "threshold_invariant_rates", False):
            from ..core.batch import batched_steady_states  # deferred: heavy

            self._steady = batched_steady_states(model, d_max)
        topology = model.topology
        self._ring_sizes = np.array(
            [topology.ring_size(i) for i in range(d_max + 1)], dtype=float
        )

    def steady_row(self, d: int) -> np.ndarray:
        if self._steady is not None:
            return self._steady[d, : d + 1]
        row = self._rows.get(d)
        if row is None:
            row = np.asarray(self.model.steady_state(d), dtype=float)
            self._rows[d] = row
        return row

    def ring_sizes(self, d: int) -> np.ndarray:
        return self._ring_sizes[: d + 1]

    def breakdown(self, d: int, plan: PagingPlan):
        """``(C_u, C_v, E[cells], E[delay])`` at ``(d, plan)``."""
        p = self.steady_row(d)
        rate = self.model.update_rate(d, convention=self.convention)
        update = float(p[d]) * rate * self.costs.update_cost
        cells = plan.expected_polled_cells(self.model.topology, p)
        paging = self.model.c * self.costs.poll_cost * cells
        return update, paging, cells, plan.expected_delay(p)

    def total_cost(self, d: int, plan: PagingPlan) -> float:
        update, paging, _, _ = self.breakdown(d, plan)
        return update + paging


def optimize_joint_policy(
    model: MobilityModel,
    costs: CostParams,
    max_delay=1,
    d_max: int = DEFAULT_MAX_THRESHOLD,
    convention: str = "paper",
    tol: float = 1e-12,
    max_iterations: int = 25,
) -> JointPolicy:
    """Alternating minimization for the jointly optimal policy pair.

    Parameters
    ----------
    model:
        The terminal's mobility model (fixes geometry and ``q, c``).
    costs:
        Update and polling costs ``(U, V)``.
    max_delay:
        Delay bound ``m`` in polling cycles (``math.inf`` = unbounded).
    d_max:
        Registration-step search bound ``D``.
    convention:
        Boundary-rate convention for ``C_u`` at ``d = 0`` (matches
        :class:`~repro.core.costs.CostEvaluator`).
    tol:
        Stop when one full sweep improves ``C_T`` by at most this much.
    max_iterations:
        Hard bound on the number of alternation sweeps.

    Returns a :class:`JointPolicy` whose cost history is monotone
    non-increasing from the distance-based optimum ``C_T(d*, m)``.
    """
    m = validate_delay(max_delay)
    d_max = validate_threshold(d_max)
    if max_iterations < 1:
        raise ParameterError(f"max_iterations must be >= 1, got {max_iterations}")
    if not (tol >= 0.0):
        raise ParameterError(f"tol must be >= 0, got {tol}")

    baseline = find_optimal_threshold(
        model, costs, m, d_max=d_max, convention=convention
    )
    evaluator = _JointEvaluator(model, costs, d_max, convention)

    d = baseline.threshold
    plan = sdf_partition(d, m)
    cost = evaluator.total_cost(d, plan)
    history = [JointIteration(0, d, plan, cost)]

    converged = False
    for sweep in range(1, max_iterations + 1):
        # Paging step: exactly optimal contiguous partition for this d.
        candidate = optimal_contiguous_partition(
            d, m, evaluator.steady_row(d), evaluator.ring_sizes(d)
        )
        candidate_cost = evaluator.total_cost(d, candidate)
        if candidate_cost < cost:  # monotonicity guard
            plan, cost = candidate, candidate_cost

        # Registration step: scan thresholds with the plan held fixed
        # (adapted to each candidate's ring count).  Ascending scan with
        # a strict-improvement tie tolerance reproduces the distance
        # searcher's tie-breaking on degenerate instances.
        best_d, best_plan, best_cost = d, plan, cost
        for d_new in range(d_max + 1):
            if d_new == d:
                continue
            trial_plan = adapt_plan(plan, d_new, m)
            trial_cost = evaluator.total_cost(d_new, trial_plan)
            if trial_cost < best_cost - _TIE_TOLERANCE:
                best_d, best_plan, best_cost = d_new, trial_plan, trial_cost
        d, plan = best_d, best_plan
        improvement = cost - best_cost
        cost = min(cost, best_cost)  # guard: never record an increase
        history.append(JointIteration(sweep, d, plan, cost))
        if improvement <= tol:
            converged = True
            break

    update, paging, cells, delay = evaluator.breakdown(d, plan)
    return JointPolicy(
        threshold=d,
        plan=plan,
        max_delay=m,
        update_cost=update,
        paging_cost=paging,
        expected_polled_cells=cells,
        expected_delay=delay,
        history=tuple(history),
        converged=converged,
        baseline_threshold=baseline.threshold,
        baseline_cost=baseline.total_cost,
    )


def exact_model_for_topology(
    topology: CellTopology, mobility: MobilityParams
) -> MobilityModel:
    """The exact ring chain realized by a random walk on ``topology``."""
    if isinstance(topology, LineTopology):
        return OneDimensionalModel(mobility)
    if isinstance(topology, HexTopology):
        return TwoDimensionalModel(mobility)
    if isinstance(topology, SquareTopology):
        return SquareGridModel(mobility)
    raise ParameterError(
        "jointly-optimal strategy supports line, hex, and square "
        f"geometries, got {topology!r}"
    )


class JointlyOptimalStrategy(DistanceStrategy):
    """Distance registration + optimized paging order, solved jointly.

    At :meth:`attach` time the strategy maps the bound topology to its
    exact ring chain, runs :func:`optimize_joint_policy`, and then
    behaves as a distance-based scheme with the converged threshold and
    the converged (generally non-SDF) paging plan.

    Parameters
    ----------
    mobility:
        The terminal's ``(q, c)`` -- the joint optimization is offline,
        so the rates must be known up front (contrast
        :class:`~repro.strategies.dynamic.DynamicStrategy`).
    costs:
        The ``(U, V)`` cost weights.
    max_delay:
        Paging delay bound ``m``.
    d_max, tol, max_iterations:
        Forwarded to :func:`optimize_joint_policy`.
    convention:
        Boundary-rate convention; the default ``"physical"`` matches
        the simulated walk's actual update rate at ``d = 0``.
    """

    name = "jointly-optimal"

    def __init__(
        self,
        mobility: MobilityParams,
        costs: CostParams,
        max_delay=1,
        d_max: int = 50,
        convention: str = "physical",
        tol: float = 1e-12,
        max_iterations: int = 25,
    ) -> None:
        super().__init__(0, max_delay)  # placeholder until attach()
        self.mobility = mobility
        self.costs = costs
        self.d_max = d_max
        self.convention = convention
        self.tol = tol
        self.max_iterations = max_iterations
        self.policy: Optional[JointPolicy] = None

    def attach(self, topology: CellTopology, start: Cell) -> None:
        if self.policy is None:
            model = exact_model_for_topology(topology, self.mobility)
            self.policy = optimize_joint_policy(
                model,
                self.costs,
                self.max_delay,
                d_max=self.d_max,
                convention=self.convention,
                tol=self.tol,
                max_iterations=self.max_iterations,
            )
            self.threshold = self.policy.threshold
            self.plan = self.policy.plan
            self._groups_by_center.clear()
        super().attach(topology, start)

    def __repr__(self) -> str:
        delay = "inf" if self.max_delay == math.inf else self.max_delay
        if self.policy is None:
            return f"JointlyOptimalStrategy(unattached, max_delay={delay})"
        return (
            f"JointlyOptimalStrategy(threshold={self.threshold}, "
            f"plan={self.plan.describe()!r}, max_delay={delay})"
        )


register_strategy("jointly-optimal", JointlyOptimalStrategy)
