"""Location-update strategy interface.

A strategy encapsulates both halves of a location-management policy:

* **when the terminal reports its location** (the update rule), and
* **which cells the network polls, in what order, when a call arrives**
  (the paging rule) -- the two are inseparable, because the paging area
  is exactly the location uncertainty the update rule permits.

The simulation engine drives a strategy through a small event
interface; strategies are stateful and single-terminal (create one per
simulated terminal).

Lifecycle
---------

1. :meth:`attach` -- bind to a topology and initial cell (the network
   is assumed to know the terminal's position at time zero).
2. Per slot, the engine calls :meth:`on_slot` first (timer-driven
   updates fire here, even for a stationary terminal), then -- if the
   slot contains a movement -- :meth:`on_move`.
3. A ``True`` return from either means "the terminal transmits a
   location update now"; the engine charges ``U`` and then calls
   :meth:`on_location_known`.
4. On a call arrival the engine walks :meth:`polling_groups`, charging
   ``V`` per polled cell until the group containing the terminal is
   reached, then calls :meth:`on_location_known`.

The registry maps strategy names to factories so benches and the CLI
can construct strategies from strings.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterator, List, Optional

from ..exceptions import ParameterError, SimulationError
from ..geometry.topology import Cell, CellTopology

__all__ = ["UpdateStrategy", "register_strategy", "create_strategy", "strategy_names"]


class UpdateStrategy(abc.ABC):
    """Base class for location update/paging policies."""

    #: Short machine-readable name; subclasses override.
    name: str = "abstract"

    def __init__(self) -> None:
        self._topology: Optional[CellTopology] = None
        self._last_known: Optional[Cell] = None

    # -- engine-facing lifecycle -------------------------------------

    def attach(self, topology: CellTopology, start: Cell) -> None:
        """Bind to a geometry and establish the initial known location."""
        topology.validate_cell(start)
        self._topology = topology
        self._last_known = start
        self._reset_state(start)

    @property
    def topology(self) -> CellTopology:
        """The bound geometry (raises if :meth:`attach` was not called)."""
        if self._topology is None:
            raise SimulationError(f"strategy {self.name!r} is not attached")
        return self._topology

    @property
    def last_known(self) -> Cell:
        """Cell where the network last learned the terminal's position."""
        if self._last_known is None:
            raise SimulationError(f"strategy {self.name!r} is not attached")
        return self._last_known

    def on_slot(self, position: Cell, slot: int) -> bool:
        """Called once per slot before any movement; True = update now.

        Default: no timer-driven updates.
        """
        return False

    @abc.abstractmethod
    def on_move(self, position: Cell) -> bool:
        """Called after the terminal moves to ``position``; True = update."""

    def on_location_known(self, position: Cell) -> None:
        """The network learned the exact position (update or page hit)."""
        self._last_known = position
        self._reset_state(position)

    @abc.abstractmethod
    def polling_groups(self) -> Iterator[List[Cell]]:
        """Yield the cell groups the network polls, one per cycle.

        The union of all groups must contain every cell the terminal
        could currently occupy; the engine raises
        :class:`~repro.exceptions.SimulationError` if paging exhausts
        the groups without finding the terminal, which indicates a
        strategy bug.
        """

    # -- subclass hooks ------------------------------------------------

    @abc.abstractmethod
    def _reset_state(self, position: Cell) -> None:
        """Clear uncertainty state after the network pinpoints the terminal."""

    # -- reporting -------------------------------------------------------

    def worst_case_delay(self) -> Optional[int]:
        """Worst-case paging delay in cycles, if the policy bounds it."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[..., UpdateStrategy]] = {}


def register_strategy(name: str, factory: Callable[..., UpdateStrategy]) -> None:
    """Register a strategy factory under ``name`` (used by CLI/benches)."""
    if name in _REGISTRY:
        raise ParameterError(f"strategy {name!r} already registered")
    _REGISTRY[name] = factory


def create_strategy(name: str, **kwargs) -> UpdateStrategy:
    """Instantiate a registered strategy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown strategy {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def strategy_names() -> List[str]:
    """Names of all registered strategies, sorted."""
    return sorted(_REGISTRY)
