"""Time-based update strategy (Bar-Noy, Kessler & Sidi, ref [3]).

The terminal transmits an update every ``T`` slots, regardless of
movement -- the simplest possible rule, implementable with nothing but
a clock.  Its weakness is twofold: stationary terminals pay for
useless updates, and the paging area must cover every cell reachable
in the elapsed time (the radius-``elapsed`` disk), which balloons for
large ``T``.  Included as the second baseline of the strategy bench.
"""

from __future__ import annotations

import math
from typing import Iterator, List

from ..core.parameters import validate_delay
from ..exceptions import ParameterError
from ..geometry.topology import Cell
from ..paging import sdf_partition
from .base import UpdateStrategy, register_strategy

__all__ = ["TimerStrategy"]


class TimerStrategy(UpdateStrategy):
    """Update every ``period`` slots.

    Parameters
    ----------
    period:
        ``T >= 1`` slots between updates.
    max_delay:
        Paging delay bound for the SDF partition of the uncertainty
        disk at call time.
    """

    name = "timer"

    def __init__(self, period: int, max_delay=1) -> None:
        super().__init__()
        if isinstance(period, bool) or not isinstance(period, int):
            raise ParameterError(f"period must be an int, got {period!r}")
        if period < 1:
            raise ParameterError(f"period must be >= 1, got {period}")
        self.period = period
        self.max_delay = validate_delay(max_delay)
        self._slots_since_known = 0
        self._moves_since_known = 0

    def _reset_state(self, position: Cell) -> None:
        self._slots_since_known = 0
        self._moves_since_known = 0

    @property
    def slots_since_known(self) -> int:
        """Slots since the network last pinpointed the terminal."""
        return self._slots_since_known

    def on_slot(self, position: Cell, slot: int) -> bool:
        self._slots_since_known += 1
        return self._slots_since_known >= self.period

    def on_move(self, position: Cell) -> bool:
        # Movements never directly trigger an update; they only widen
        # the uncertainty the timer scheme must page over.
        self._moves_since_known += 1
        return False

    def uncertainty_radius(self) -> int:
        """Maximum ring distance from the last known cell.

        The terminal itself knows its movement count, but the *network*
        only knows elapsed time, so the paging area is bounded by the
        slot count (one cell crossing per slot at most).
        """
        return self._slots_since_known

    def polling_groups(self) -> Iterator[List[Cell]]:
        radius = self.uncertainty_radius()
        plan = sdf_partition(radius, self.max_delay)
        topo = self.topology
        center = self.last_known
        for group in plan.subareas:
            cells: List[Cell] = []
            for ring in group:
                cells.extend(topo.ring(center, ring))
            yield cells

    def worst_case_delay(self) -> int:
        if self.max_delay == math.inf:
            return self.period + 1
        return int(self.max_delay)

    def __repr__(self) -> str:
        return f"TimerStrategy(period={self.period}, max_delay={self.max_delay})"


register_strategy("timer", TimerStrategy)
