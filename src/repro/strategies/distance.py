"""The paper's distance-based update strategy (Section 2.2).

The terminal tracks its ring distance from the *center cell* (where it
last reported).  When a movement takes the distance beyond the
threshold ``d`` it transmits an update, making the new cell the center.
The residing-area invariant -- the terminal is always within distance
``d`` of the center -- lets the network page only ``g(d)`` cells,
partitioned into at most ``m`` shortest-distance-first subareas.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterator, List, Optional

from ..core.parameters import validate_delay, validate_threshold
from ..geometry.topology import Cell
from ..paging import PagingPlan, sdf_partition
from .base import UpdateStrategy, register_strategy

__all__ = ["DistanceStrategy"]

#: Centers whose materialized polling groups are kept (LRU).  A
#: terminal re-centers on every update and page hit, and low-mobility
#: terminals revisit the same handful of centers constantly.
_GROUP_CACHE_CENTERS = 256


class DistanceStrategy(UpdateStrategy):
    """Distance-based update with delay-constrained SDF paging.

    Parameters
    ----------
    threshold:
        The update threshold distance ``d`` in rings.
    max_delay:
        Paging delay bound ``m`` (cycles); ``math.inf`` polls one ring
        per cycle.
    plan:
        Optional explicit :class:`~repro.paging.PagingPlan` overriding
        the SDF default -- used by the optimal-partition ablation.
    """

    name = "distance"

    def __init__(self, threshold: int, max_delay=1, plan: Optional[PagingPlan] = None) -> None:
        super().__init__()
        self.threshold = validate_threshold(threshold)
        self.max_delay = validate_delay(max_delay)
        if plan is not None and plan.threshold != self.threshold:
            raise ValueError(
                f"plan is for threshold {plan.threshold}, strategy uses {self.threshold}"
            )
        self.plan = plan if plan is not None else sdf_partition(self.threshold, max_delay)
        # Materialized polling groups per center, filled lazily one
        # group at a time (paging usually stops at an inner subarea, so
        # outer rings are never enumerated unless actually polled).
        self._groups_by_center: "OrderedDict[Cell, List[List[Cell]]]" = OrderedDict()

    def _reset_state(self, position: Cell) -> None:
        # The center cell *is* the last known location; no extra state.
        pass

    @property
    def center(self) -> Cell:
        """The terminal's current center cell."""
        return self.last_known

    def on_move(self, position: Cell) -> bool:
        return self.topology.distance(self.center, position) > self.threshold

    def polling_groups(self) -> Iterator[List[Cell]]:
        center = self.center
        cache = self._groups_by_center
        built = cache.get(center)
        if built is None:
            built = []
            cache[center] = built
            while len(cache) > _GROUP_CACHE_CENTERS:
                cache.popitem(last=False)
        else:
            cache.move_to_end(center)
        topo = self.topology
        for index, group in enumerate(self.plan.subareas):
            if index < len(built):
                yield built[index]
                continue
            cells: List[Cell] = []
            for ring in group:
                cells.extend(topo.ring(center, ring))
            built.append(cells)
            yield cells

    def worst_case_delay(self) -> int:
        return self.plan.delay_bound

    def __repr__(self) -> str:
        delay = "inf" if self.max_delay == math.inf else self.max_delay
        return f"DistanceStrategy(threshold={self.threshold}, max_delay={delay})"


register_strategy("distance", DistanceStrategy)
