"""A simulation engine that survives a faulty signaling plane.

:class:`ResilientEngine` generalizes the one-off
:class:`~repro.simulation.lossy.LossyUpdateEngine` into a composable
subsystem: it accepts any list of :class:`~repro.faults.FaultModel`
processes plus a :class:`~repro.faults.SignalingPolicy`, and keeps the
paper's protocol correct under their composition:

* **updates** are acknowledged; a transmission any fault drops is
  retried with exponential backoff, each retry charged a full ``U``
  (see :mod:`repro.faults.signaling`).  An update that exhausts its
  retries leaves the register stale -- the terminal and network views
  diverge exactly as in the lossy engine;
* **register reads** go through the fault models, so a degraded
  register can serve a stale center and paging starts in the wrong
  place;
* **paging** polls the plan around the register's (possibly stale)
  center; a call the terminal does not answer -- wrong center, missed
  poll, or dark base station -- is re-paged up to the policy's limit
  and then escalates to expanding-ring **recovery paging**, which keeps
  polling (advancing the tick clock, so outages expire under it) until
  the terminal answers or the hard cap trips with
  :class:`~repro.exceptions.RecoveryExhaustedError`.

The correctness invariant carried over from the lossy engine holds for
any composition of the shipped fault models: every call is eventually
answered, because update loss is repaired by recovery, page loss has
probability < 1 per poll, and outages/failovers have finite duration.

Simulator shortcuts (documented, deliberate): retries resolve within
the triggering slot (the chain's slot is much coarser than a signaling
round-trip) with the backoff waiting time accounted in
:attr:`update_latency_slots`; and recovery stops expanding at the
terminal's actual ring instead of sweeping past it, since the terminal
is static within the slot and polls beyond its ring are dead cost in
every sweep strategy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError, RecoveryExhaustedError
from ..geometry.topology import Cell, CellTopology
from ..observability.context import current as _observability
from ..simulation.engine import SimulationEngine, strategy_labels
from ..simulation.events import EventLog, PagingEvent, UpdateEvent
from ..strategies.distance import DistanceStrategy
from .models import FaultModel
from .signaling import SignalingPolicy

__all__ = ["ResilientEngine"]

#: Hard cap on recovery ring expansion, far beyond anything reachable:
#: the terminal drifts at most one ring per slot, so hitting this means
#: a bookkeeping bug, not an unlucky walk.
_MAX_RECOVERY_RADIUS = 10_000

#: Hard cap on recovery polling cycles per call.  Re-polls are a
#: geometric race against page loss / outage expiry, so this bounds the
#: tail without ever firing in a correctly configured run.
_MAX_RECOVERY_CYCLES = 50_000

#: Register write history kept for degradation models (oldest dropped).
_HISTORY_LIMIT = 256


class ResilientEngine(SimulationEngine):
    """A :class:`SimulationEngine` composing fault models with resilient
    signaling.

    Parameters (beyond the base engine's)
    -------------------------------------
    faults:
        Any iterable of :class:`~repro.faults.FaultModel` instances;
        they compose (a transaction succeeds only if every model lets
        it through).  An empty list reproduces the fault-free engine.
    signaling:
        The ack/retry/backoff and re-page policy; defaults to
        ``SignalingPolicy()`` (3 retries, 1 re-page).
    """

    def __init__(
        self,
        topology: CellTopology,
        strategy: DistanceStrategy,
        mobility: MobilityParams,
        costs: CostParams,
        faults: Iterable[FaultModel] = (),
        signaling: Optional[SignalingPolicy] = None,
        seed: Optional[int] = None,
        start: Optional[Cell] = None,
        event_mode: str = "exclusive",
        event_log: Optional[EventLog] = None,
    ) -> None:
        if not isinstance(strategy, DistanceStrategy):
            raise ParameterError(
                "ResilientEngine pages around the register's center using the "
                f"distance scheme's plan; got {strategy!r}"
            )
        if signaling is not None and not isinstance(signaling, SignalingPolicy):
            raise ParameterError(
                f"signaling must be a SignalingPolicy, got {signaling!r}"
            )
        super().__init__(
            topology=topology,
            strategy=strategy,
            mobility=mobility,
            costs=costs,
            seed=seed,
            start=start,
            event_mode=event_mode,
            event_log=event_log,
        )
        self.faults: List[FaultModel] = list(faults)
        for fault in self.faults:
            if not isinstance(fault, FaultModel):
                raise ParameterError(
                    f"faults must be FaultModel instances, got {fault!r}"
                )
            fault.bind(self.rng, topology)
        self.signaling = signaling if signaling is not None else SignalingPolicy()
        #: The register's belief; diverges from the terminal's center
        #: after an update whose every (re)transmission was lost.
        self.network_center: Cell = self.walk.position
        self._center_history: List[Tuple[int, Cell]] = [(0, self.network_center)]
        #: Monotone protocol clock: one tick per slot plus one per
        #: polling cycle, so within-call time passes for outage expiry.
        self.clock = 0
        # A plan miss only proves the terminal left the (possibly
        # stale) residing area when no fault can silence an in-area
        # poll; otherwise recovery must re-sweep from ring 0.
        self._recovery_start = (
            0 if any(_affects_paging(f) for f in self.faults)
            else strategy.threshold + 1
        )
        # -- resilience accounting ------------------------------------
        self.lost_transmissions = 0  # individual attempts any fault dropped
        self.lost_updates = 0        # update events never delivered
        self.update_retries = 0
        self.update_latency_slots = 0.0
        self.stale_lookups = 0
        self.missed_polls = 0        # polls the terminal failed to answer
        self.repages = 0
        self.recovery_pagings = 0
        self.recovery_cells = 0
        # Fault-layer metric handles (base-class instruments cover the
        # protocol events; these cover the resilience machinery).
        obs = _observability()
        if obs.enabled:
            labels = dict(strategy_labels(strategy), engine=self._engine_label)
            registry = obs.registry
            self._fault_instruments = {
                name: registry.counter(f"{name}_total", **labels)
                for name in (
                    "lost_transmissions",
                    "lost_updates",
                    "update_retries",
                    "update_backoff_slots",
                    "stale_lookups",
                    "missed_polls",
                    "repages",
                    "recovery_pagings",
                    "recovery_cells",
                )
            }
        else:
            self._fault_instruments = None

    #: Resilient runs report under their own engine label so fault-free
    #: and faulty campaigns in one session stay distinguishable.
    _engine_label = "resilient"

    # -- slot protocol -----------------------------------------------------

    def step(self) -> None:
        for fault in self.faults:
            fault.on_slot(self.slot)
        self.clock += 1
        super().step()

    # -- update path -------------------------------------------------------

    def _perform_update(self, timer: bool) -> None:
        position = self.walk.position
        fins = self._fault_instruments
        self.meter.charge_update()  # the terminal transmitted either way
        self.strategy.on_location_known(position)  # terminal view resets
        if self._instruments is not None:
            ins = self._instruments
            (ins.updates_timer if timer else ins.updates_move).inc()
        delivered = self._transmit(position)
        attempt = 0
        while not delivered and attempt < self.signaling.max_update_retries:
            attempt += 1
            self.update_retries += 1
            wait = self.signaling.retry_wait(attempt)
            self.update_latency_slots += wait
            if fins is not None:
                fins["update_retries"].inc()
                fins["update_backoff_slots"].inc(wait)
            self.meter.charge_update()  # each retry is a full U transaction
            delivered = self._transmit(position)
        if delivered:
            self._register_write(position)
        else:
            self.lost_updates += 1
            if fins is not None:
                fins["lost_updates"].inc()
            if self.signaling.on_exhaustion == "raise":
                raise RecoveryExhaustedError(
                    f"update from {position!r} lost after "
                    f"{self.signaling.max_update_retries} retries"
                )
        if self.log is not None:
            self.log.append(
                UpdateEvent(slot=self.slot, cell=position, timer_triggered=timer)
            )

    def _transmit(self, position: Cell) -> bool:
        """One update transmission through every fault model."""
        tick = self.clock
        delivered = not any(
            f.cell_dark(tick, position) for f in self.faults
        ) and all(f.update_delivered(tick, position) for f in self.faults)
        if not delivered:
            self.lost_transmissions += 1
            if self._fault_instruments is not None:
                self._fault_instruments["lost_transmissions"].inc()
        return delivered

    # -- register ----------------------------------------------------------

    def _register_write(self, cell: Cell) -> None:
        self.network_center = cell
        self._center_history.append((self.slot, cell))
        if len(self._center_history) > _HISTORY_LIMIT:
            del self._center_history[0]

    def _register_lookup(self) -> Cell:
        for fault in self.faults:
            cell = fault.register_read(self.slot, self._center_history)
            if cell is not None:
                if cell != self.network_center:
                    self.stale_lookups += 1
                    if self._fault_instruments is not None:
                        self._fault_instruments["stale_lookups"].inc()
                return cell
        return self.network_center

    # -- paging path -------------------------------------------------------

    def _handle_call(self) -> None:
        position = self.walk.position
        topo = self.topology
        plan = self.strategy.plan
        center = self._register_lookup()
        distance = topo.distance(center, position)
        polled = 0
        cycles = 0
        found = False
        attempts = 0
        fins = self._fault_instruments
        while not found and attempts <= self.signaling.max_repage_attempts:
            if attempts:
                self.repages += 1
                if fins is not None:
                    fins["repages"].inc()
            for group in plan.subareas:
                cycles += 1
                self.clock += 1
                polled += sum(topo.ring_size(ring) for ring in group)
                if distance in group and self._terminal_answers(position):
                    found = True
                    break
            attempts += 1
        if not found:
            polled, cycles = self._recover(position, center, distance, polled, cycles)
        self.meter.charge_paging(cells_polled=polled, cycles=cycles)
        if self._instruments is not None:
            self._instruments.record_call(polled, cycles)
        self._register_write(position)  # the located call re-synchronizes views
        self.strategy.on_location_known(position)
        if self.log is not None:
            self.log.append(
                PagingEvent(
                    slot=self.slot, cell=position, cells_polled=polled, cycles=cycles
                )
            )

    def _recover(
        self, position: Cell, center: Cell, distance: int, polled: int, cycles: int
    ) -> Tuple[int, int]:
        """Expanding-ring recovery around ``center`` until answered."""
        self.recovery_pagings += 1
        fins = self._fault_instruments
        if fins is not None:
            fins["recovery_pagings"].inc()
        topo = self.topology
        radius = min(self._recovery_start, distance)
        recovery_cycles = 0
        while True:
            recovery_cycles += 1
            if recovery_cycles > _MAX_RECOVERY_CYCLES:
                raise RecoveryExhaustedError(
                    f"recovery paging gave up after {recovery_cycles - 1} "
                    f"cycles: terminal at ring {distance} never answered"
                )
            if radius > _MAX_RECOVERY_RADIUS:
                raise RecoveryExhaustedError(
                    f"recovery paging exceeded the {_MAX_RECOVERY_RADIUS}-ring "
                    f"cap: terminal {distance} rings out"
                )
            cycles += 1
            self.clock += 1
            cells = topo.ring_size(radius)
            polled += cells
            self.recovery_cells += cells
            if fins is not None:
                fins["recovery_cells"].inc(cells)
            if radius == distance and self._terminal_answers(position):
                return polled, cycles
            # The terminal is static within the slot: expanding past its
            # ring is dead cost in every sweep, so clamp and re-poll.
            radius = min(radius + 1, distance)

    def _terminal_answers(self, position: Cell) -> bool:
        """Would the terminal hear and answer a poll right now?"""
        tick = self.clock
        if any(f.cell_dark(tick, position) for f in self.faults) or not all(
            f.page_heard(tick, position) for f in self.faults
        ):
            self.missed_polls += 1
            if self._fault_instruments is not None:
                self._fault_instruments["missed_polls"].inc()
            return False
        return True

    # -- reporting ---------------------------------------------------------

    def fault_report(self) -> dict:
        """Structured resilience counters (engine plus per-fault)."""
        return {
            "faults": [repr(f) for f in self.faults],
            "lost_transmissions": self.lost_transmissions,
            "lost_updates": self.lost_updates,
            "update_retries": self.update_retries,
            "update_latency_slots": self.update_latency_slots,
            "stale_lookups": self.stale_lookups,
            "missed_polls": self.missed_polls,
            "repages": self.repages,
            "recovery_pagings": self.recovery_pagings,
            "recovery_cells": self.recovery_cells,
        }


def _affects_paging(fault: FaultModel) -> bool:
    """Can ``fault`` silence a poll to a cell the terminal occupies?"""
    return (
        type(fault).page_heard is not FaultModel.page_heard
        or type(fault).cell_dark is not FaultModel.cell_dark
    )
