"""Fault injection for the signaling plane.

Composable failure processes (update loss, page loss, base-station
outages, register degradation) behind one :class:`FaultModel`
interface, a :class:`SignalingPolicy` describing ack/retry/backoff and
re-page escalation, and a :class:`ResilientEngine` that keeps the
paper's update/paging protocol correct under any composition of them.
"""

from .models import (
    BaseStationOutage,
    FaultModel,
    PageLoss,
    RegisterDegradation,
    UpdateLoss,
)
from .resilient import ResilientEngine
from .signaling import SignalingPolicy

__all__ = [
    "BaseStationOutage",
    "FaultModel",
    "PageLoss",
    "RegisterDegradation",
    "ResilientEngine",
    "SignalingPolicy",
    "UpdateLoss",
]
