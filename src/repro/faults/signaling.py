"""Resilient signaling semantics: acknowledgements, retries, backoff.

The paper's update message is fire-and-forget; a real signaling plane
acknowledges it.  :class:`SignalingPolicy` describes what the terminal
and network do when the acknowledgement does not come:

* an update that is not acked within ``ack_timeout_slots`` is
  retransmitted, up to ``max_update_retries`` times, with exponential
  backoff (``ack_timeout_slots * backoff_factor**k`` before retry
  ``k``).  Every retransmission is a full update transaction and is
  charged ``U`` -- resilience is not free, and the meter shows it;
* a call whose planned paging completes without an answer is re-paged
  (the full plan again) up to ``max_repage_attempts`` times before the
  network escalates to expanding-ring recovery paging.

The engine resolves retries within the slot that triggered them -- the
mobility chain's slot is far coarser than signaling round-trips -- and
accounts the backoff waiting time separately (see
:attr:`~repro.faults.ResilientEngine.update_latency_slots`) instead of
stalling the walk.

``on_exhaustion`` selects between the two defensible behaviors when
every retry is lost: ``"abandon"`` (default) lets the views diverge and
trusts recovery paging, preserving the graceful-degradation story even
at 100% loss; ``"raise"`` raises
:class:`~repro.exceptions.RecoveryExhaustedError` for deployments where
a silently failed update is unacceptable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError

__all__ = ["SignalingPolicy"]

_EXHAUSTION_MODES = ("abandon", "raise")


@dataclass(frozen=True)
class SignalingPolicy:
    """How hard the signaling plane tries before giving up."""

    ack_timeout_slots: float = 1.0
    max_update_retries: int = 3
    backoff_factor: float = 2.0
    max_repage_attempts: int = 1
    on_exhaustion: str = "abandon"

    def __post_init__(self) -> None:
        if self.ack_timeout_slots <= 0:
            raise ParameterError(
                f"ack_timeout_slots must be > 0, got {self.ack_timeout_slots}"
            )
        if self.max_update_retries < 0:
            raise ParameterError(
                f"max_update_retries must be >= 0, got {self.max_update_retries}"
            )
        if self.backoff_factor < 1.0:
            raise ParameterError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_repage_attempts < 0:
            raise ParameterError(
                f"max_repage_attempts must be >= 0, got {self.max_repage_attempts}"
            )
        if self.on_exhaustion not in _EXHAUSTION_MODES:
            raise ParameterError(
                f"on_exhaustion must be one of {_EXHAUSTION_MODES}, "
                f"got {self.on_exhaustion!r}"
            )

    def retry_wait(self, attempt: int) -> float:
        """Slots waited before retry ``attempt`` (1-based): timeout + backoff."""
        if attempt < 1:
            raise ParameterError(f"attempt must be >= 1, got {attempt}")
        return self.ack_timeout_slots * self.backoff_factor ** (attempt - 1)

    @classmethod
    def fire_and_forget(cls) -> "SignalingPolicy":
        """The paper's (and :class:`LossyUpdateEngine`'s) semantics.

        No acknowledgement, no retries, no re-page: a lost update stays
        lost until recovery paging repairs the divergence.
        """
        return cls(max_update_retries=0, max_repage_attempts=0)
