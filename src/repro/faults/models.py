"""Composable fault models for the signaling plane.

The paper's analysis assumes a perfect signaling plane: every location
update reaches the register, every page is heard, every base station is
up, every register read is fresh.  Each class here breaks exactly one
of those assumptions as a small seedable stochastic process, behind the
common :class:`FaultModel` interface, so an engine can compose any
subset of them in one run instead of needing a bespoke engine subclass
per failure scenario (which is how :class:`~repro.simulation.lossy.
LossyUpdateEngine` started life).

A fault model is passive: it never touches the engine.  The engine
calls the hooks at well-defined protocol points and combines the
answers conservatively (a transaction succeeds only if *every* fault
model lets it through).  Hooks a model does not care about keep the
base-class no-fault default, which is what makes composition free.

Time is measured in *ticks*: the engine advances one tick per slot and
one extra tick per polling cycle during a call, so that long recovery
sequences experience the passage of time (base-station outages expire,
register failovers end) even though the whole call resolves within one
slot of the mobility chain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import FaultInjectionError, ParameterError
from ..geometry.topology import Cell, CellTopology

__all__ = [
    "FaultModel",
    "UpdateLoss",
    "PageLoss",
    "BaseStationOutage",
    "RegisterDegradation",
]


class FaultModel:
    """Base class: one seedable failure process with protocol hooks.

    Parameters
    ----------
    seed:
        Optional private seed.  When given, the model draws from its
        own ``numpy`` generator so the fault process is reproducible
        independently of the engine's event stream; when omitted the
        model shares the engine's RNG (binding order then matters for
        exact reproducibility, as with any shared stream).
    """

    name = "fault"

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None
        self.topology: Optional[CellTopology] = None

    def bind(self, rng: np.random.Generator, topology: CellTopology) -> None:
        """Attach the model to an engine's RNG and geometry."""
        self._rng = np.random.default_rng(self._seed) if self._seed is not None else rng
        self.topology = topology

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            raise FaultInjectionError(
                f"{type(self).__name__} used before bind(); fault models must "
                "be attached to an engine (or bound explicitly) first"
            )
        return self._rng

    # -- hooks (defaults: no fault) -------------------------------------

    def on_slot(self, slot: int) -> None:
        """Advance any autonomous state; called once per engine slot."""

    def update_delivered(self, tick: int, cell: Cell) -> bool:
        """Does an update transmitted from ``cell`` reach the register?"""
        return True

    def page_heard(self, tick: int, cell: Cell) -> bool:
        """Does the terminal at ``cell`` hear (and answer) its poll?"""
        return True

    def cell_dark(self, tick: int, cell: Cell) -> bool:
        """Is the base station serving ``cell`` out of service?"""
        return False

    def register_read(
        self, tick: int, history: List[Tuple[int, Cell]]
    ) -> Optional[Cell]:
        """Override the register's answer for a location lookup.

        ``history`` is the write history, oldest first, newest last,
        as ``(slot, cell)`` pairs.  Return ``None`` to pass through
        (the engine then uses the newest entry or asks the next model).
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _validate_probability(name: str, value: float, closed_top: bool) -> float:
    top_ok = value <= 1.0 if closed_top else value < 1.0
    if not (0.0 <= value and top_ok):
        interval = "[0, 1]" if closed_top else "[0, 1)"
        raise ParameterError(f"{name} must be in {interval}, got {value}")
    return float(value)


class UpdateLoss(FaultModel):
    """Each transmitted location update is lost with a fixed probability.

    The closed interval ``[0, 1]`` is allowed: total loss is exactly the
    regime where recovery paging carries the whole correctness burden,
    and the every-call-eventually-answered invariant is most worth
    exercising.
    """

    name = "update-loss"

    def __init__(self, probability: float, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.probability = _validate_probability(
            "update loss probability", probability, closed_top=True
        )
        self.drops = 0

    def update_delivered(self, tick: int, cell: Cell) -> bool:
        if self.rng.random() < self.probability:
            self.drops += 1
            return False
        return True

    def __repr__(self) -> str:
        return f"UpdateLoss(probability={self.probability})"


class PageLoss(FaultModel):
    """The terminal misses a poll with a fixed probability.

    A missed poll wastes the polling cycle (and the cells polled in
    it); the engine re-pages on the next cycle, so the call is still
    answered eventually.  The open interval ``[0, 1)`` is required: at
    probability 1 no page is ever heard and no paging scheme, however
    resilient, can answer a call.
    """

    name = "page-loss"

    def __init__(self, probability: float, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.probability = _validate_probability(
            "page loss probability", probability, closed_top=False
        )
        self.misses = 0

    def page_heard(self, tick: int, cell: Cell) -> bool:
        if self.rng.random() < self.probability:
            self.misses += 1
            return False
        return True

    def __repr__(self) -> str:
        return f"PageLoss(probability={self.probability})"


class BaseStationOutage(FaultModel):
    """Base stations go dark for a fixed duration at a per-tick hazard.

    Polls sent to a dark cell are wasted cost (the terminal cannot hear
    them); updates transmitted from a dark cell never reach the
    register.  Outage state is materialized lazily per cell, at most
    one hazard draw per ``(cell, tick)``, because the geometries are
    infinite and only touched cells matter.

    Parameters
    ----------
    rate:
        Per-tick probability, in ``[0, 1)``, that a queried station
        starts an outage.
    duration:
        How many ticks an outage lasts (>= 1).  Finite by construction,
        so every call is still answered eventually: paging cycles
        advance the tick clock, and the outage expires under them.
    """

    name = "station-outage"

    def __init__(
        self, rate: float, duration: int, seed: Optional[int] = None
    ) -> None:
        super().__init__(seed)
        self.rate = _validate_probability("outage rate", rate, closed_top=False)
        if duration < 1:
            raise ParameterError(f"outage duration must be >= 1, got {duration}")
        self.duration = int(duration)
        self.outages_started = 0
        self._dark_until: Dict[Cell, int] = {}
        self._last_draw: Dict[Cell, int] = {}

    def cell_dark(self, tick: int, cell: Cell) -> bool:
        until = self._dark_until.get(cell)
        if until is not None and tick < until:
            return True
        if self._last_draw.get(cell) == tick:
            return False  # already drawn for this (cell, tick)
        self._last_draw[cell] = tick
        if self.rng.random() < self.rate:
            self._dark_until[cell] = tick + self.duration
            self.outages_started += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"BaseStationOutage(rate={self.rate}, duration={self.duration})"


class RegisterDegradation(FaultModel):
    """Register crashes with a failover window serving stale reads.

    With per-slot hazard ``failure_rate`` the register fails over to a
    replica whose state lags the primary: for the next
    ``failover_slots`` slots every location read returns the entry that
    was current when the failure started, not the newest write.  A
    stale read makes the network page around an outdated center, which
    the engine's re-page/recovery escalation then repairs.
    """

    name = "register-degradation"

    def __init__(
        self,
        failure_rate: float,
        failover_slots: int,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(seed)
        self.failure_rate = _validate_probability(
            "register failure rate", failure_rate, closed_top=False
        )
        if failover_slots < 1:
            raise ParameterError(
                f"failover_slots must be >= 1, got {failover_slots}"
            )
        self.failover_slots = int(failover_slots)
        self.failovers = 0
        self.stale_reads = 0
        self._failed_at: Optional[int] = None
        self._fail_until = -1

    @property
    def in_failover(self) -> bool:
        return self._failed_at is not None

    def on_slot(self, slot: int) -> None:
        if self._failed_at is not None and slot >= self._fail_until:
            self._failed_at = None
        if self._failed_at is None and self.rng.random() < self.failure_rate:
            self._failed_at = slot
            self._fail_until = slot + self.failover_slots
            self.failovers += 1

    def register_read(
        self, tick: int, history: List[Tuple[int, Cell]]
    ) -> Optional[Cell]:
        if self._failed_at is None or not history:
            return None
        # The replica's state: the newest write that predates the failure.
        snapshot: Optional[Cell] = None
        for slot, cell in history:
            if slot >= self._failed_at:
                break
            snapshot = cell
        if snapshot is None:
            snapshot = history[0][1]
        if snapshot != history[-1][1]:
            self.stale_reads += 1
        return snapshot

    def __repr__(self) -> str:
        return (
            f"RegisterDegradation(failure_rate={self.failure_rate}, "
            f"failover_slots={self.failover_slots})"
        )
