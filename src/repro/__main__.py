"""Allow ``python -m repro ...`` as an alias for the ``repro-lm`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
