"""The discrete-time simulation engine for one terminal.

Slot semantics
--------------

The Markov chain of Sections 3-4 treats "call arrival" and "movement"
as *competing* events: from state ``i`` the chain goes to 0 with
probability ``c``, to ``i +- 1`` with probabilities ``a_i``/``b_i``
(which sum to ``q`` split over neighbors), and stays otherwise.  The
engine's default slot draw matches this exactly so that simulation
results are an unbiased estimate of the analytical quantities:

    u ~ Uniform(0, 1)
    u < c                -> call slot (page, then reset; no movement)
    c <= u < c + q       -> movement slot (move, maybe update)
    otherwise            -> idle slot

``event_mode="independent"`` draws movement and call independently per
slot (both can happen; the call is processed *before* the move, so
paging sees the position the elapsed-slot-derived radius covers) --
the physically plausible variant, used by the robustness bench to show
the model's predictions survive the relaxation for small ``q c``.

*Timed* walkers (``walk.timed`` is True, e.g.
:class:`~repro.mobility.ctrw.CTRWWalk`) carry their own residence
clock: the engine draws only the call arrival and asks the walker
``move_due()`` every slot -- there is no per-slot move probability to
compete with, so timed walkers always run the independent-within-slot
semantics (call processed first, then the move) regardless of
``event_mode``.

Per-slot sequence
-----------------

1. ``strategy.on_slot`` -- timer-driven updates fire first,
2. the event draw,
3. movement (and a possible movement/dist-triggered update),
4. call handling: poll the strategy's groups cycle by cycle until the
   group containing the terminal is reached, charge ``V`` per polled
   cell, then inform the strategy of the located position.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError, SimulationError
from ..geometry.topology import Cell, CellTopology
from ..mobility.walk import RandomWalk
from ..observability.context import current as _observability
from ..strategies.base import UpdateStrategy
from .events import EventLog, MoveEvent, PagingEvent, UpdateEvent
from .metrics import CostMeter, MeterSnapshot

__all__ = ["SimulationEngine"]

_EVENT_MODES = ("exclusive", "independent")


def strategy_labels(strategy: UpdateStrategy) -> dict:
    """Metric labels identifying a strategy: ``{strategy: ..., d: ...}``.

    The class name (minus the ``Strategy`` suffix, lowercased) plus the
    threshold when the strategy has one -- the label set the issue's
    metric catalog uses, e.g. ``updates_total{strategy=distance,d=3}``.
    """
    name = type(strategy).__name__
    if name.endswith("Strategy"):
        name = name[: -len("Strategy")]
    labels = {"strategy": name.lower()}
    threshold = getattr(strategy, "threshold", None)
    if threshold is not None:
        labels["d"] = threshold
    return labels


class EngineInstruments:
    """Pre-resolved metric handles for one engine instance.

    Handles are resolved once at engine construction, so the per-event
    cost is a single attribute access plus a counter increment -- and
    engines skip building this object entirely when observability is
    disabled (``engine._instruments is None``), keeping the default hot
    path free of instrumentation work.
    """

    __slots__ = (
        "slots",
        "moves",
        "updates_move",
        "updates_timer",
        "calls",
        "polled_cells",
        "delay_histogram",
        "_registry",
        "_labels",
        "_cycle_counters",
    )

    def __init__(self, registry, strategy: UpdateStrategy, engine: str) -> None:
        labels = dict(strategy_labels(strategy), engine=engine)
        self._registry = registry
        self._labels = labels
        self.slots = registry.counter("slots_total", **labels)
        self.moves = registry.counter("moves_total", **labels)
        self.updates_move = registry.counter(
            "updates_total", trigger="distance", **labels
        )
        self.updates_timer = registry.counter(
            "updates_total", trigger="timer", **labels
        )
        self.calls = registry.counter("calls_total", **labels)
        self.polled_cells = registry.counter("polled_cells_total", **labels)
        self.delay_histogram = registry.histogram("paging_delay_cycles", **labels)
        self._cycle_counters: dict = {}

    def record_call(self, polled: int, cycles: int) -> None:
        """One completed paging operation."""
        self.calls.inc()
        self.polled_cells.inc(polled)
        self.delay_histogram.observe(cycles)

    def polled_in_cycle(self, cycle: int, cells: int) -> None:
        """Per-cycle breakdown: ``polled_cells_by_cycle_total{cycle=j}``."""
        counter = self._cycle_counters.get(cycle)
        if counter is None:
            counter = self._registry.counter(
                "polled_cells_by_cycle_total", cycle=cycle, **self._labels
            )
            self._cycle_counters[cycle] = counter
        counter.inc(cells)


class SimulationEngine:
    """Drives one terminal, one strategy, and one cost meter.

    Parameters
    ----------
    topology:
        Cell geometry.
    strategy:
        The location-update strategy under test; attached to ``start``.
    mobility:
        ``(q, c)`` parameters.
    costs:
        ``(U, V)`` cost weights.
    seed:
        Seeds the engine's private RNG.
    start:
        Initial cell (defaults to the topology origin).
    event_mode:
        ``"exclusive"`` (chain-faithful, default) or ``"independent"``.
    event_log:
        Optional :class:`EventLog` to record protocol events into.
    arrivals:
        Optional call-arrival process overriding the default Bernoulli
        draw: any object with a ``step() -> bool`` method (e.g.
        :class:`~repro.mobility.arrivals.BatchedArrivals`).  Used by
        the traffic-robustness study to feed the same strategies bursty
        traffic.  With a custom process, slot semantics are: the
        process decides whether this is a call slot; otherwise the
        terminal moves with probability ``q``.
    walker_factory:
        Optional factory ``(topology, q, rng, start) -> RandomWalk``
        overriding the default uniform random walk -- e.g.
        :class:`~repro.mobility.persistent.PersistentWalk` for the
        direction-memory robustness study, or
        ``CTRWSpec.walker_factory()`` for residence-clock (timed)
        mobility (see the module docstring for timed slot semantics).
    """

    def __init__(
        self,
        topology: CellTopology,
        strategy: UpdateStrategy,
        mobility: MobilityParams,
        costs: CostParams,
        seed: Optional[int] = None,
        start: Optional[Cell] = None,
        event_mode: str = "exclusive",
        event_log: Optional[EventLog] = None,
        arrivals=None,
        walker_factory=None,
    ) -> None:
        if event_mode not in _EVENT_MODES:
            raise ParameterError(
                f"event_mode must be one of {_EVENT_MODES}, got {event_mode!r}"
            )
        self.topology = topology
        self.strategy = strategy
        self.mobility = mobility
        self.costs = costs
        self.event_mode = event_mode
        self.rng = np.random.default_rng(seed)
        if walker_factory is None:
            self.walk = RandomWalk(
                topology, mobility.move_probability, rng=self.rng, start=start
            )
        else:
            self.walk = walker_factory(
                topology, mobility.move_probability, self.rng, start
            )
            if not isinstance(self.walk, RandomWalk):
                raise ParameterError(
                    f"walker_factory must build a RandomWalk, got {self.walk!r}"
                )
        self._timed = bool(getattr(self.walk, "timed", False))
        strategy.attach(topology, self.walk.position)
        self.meter = CostMeter(costs.update_cost, costs.poll_cost)
        self.log = event_log
        self.arrivals = arrivals
        if arrivals is not None and not callable(getattr(arrivals, "step", None)):
            raise ParameterError(
                f"arrivals must expose a step() -> bool method, got {arrivals!r}"
            )
        self.slot = 0
        # Metric handles, resolved once; None keeps the hot path clean
        # when no observability session is installed.  Instrumentation
        # never draws randomness, so enabling it cannot change results.
        obs = _observability()
        self._instruments = (
            EngineInstruments(obs.registry, strategy, engine=self._engine_label)
            if obs.enabled
            else None
        )

    #: Value of the ``engine`` metric label; subclasses override.
    _engine_label = "per-cell"

    # ------------------------------------------------------------------

    def run(self, slots: int) -> MeterSnapshot:
        """Advance ``slots`` slots and return the metric snapshot."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        ins = self._instruments
        if ins is None:
            for _ in range(slots):
                self.step()
            return self.meter.snapshot()
        # Slot and move totals are recorded as one bulk increment per
        # run() call from the meter's own counts -- moves are ~q per
        # slot, and a per-event instrument call there is the difference
        # between <1% and >2% overhead on the armed-no-op bench guard.
        moves_before = self.meter.moves
        for _ in range(slots):
            self.step()
        ins.slots.inc(slots)
        moved = self.meter.moves - moves_before
        if moved:
            ins.moves.inc(moved)
        return self.meter.snapshot()

    def step(self) -> None:
        """Advance exactly one slot."""
        meter = self.meter
        meter.begin_slot()
        try:
            self._run_slot()
        finally:
            meter.end_slot()
        self.slot += 1

    # -- internals --------------------------------------------------------

    def _run_slot(self) -> None:
        c = self.mobility.call_probability
        q = self.mobility.move_probability

        if self.strategy.on_slot(self.walk.position, self.slot):
            self._perform_update(timer=True)

        if self._timed:
            # Timed walkers (residence clocks): the call is the only
            # per-slot draw, processed before the move so paging sees
            # the pre-move position; the clock ticks every slot.
            if self.arrivals is not None:
                called = self.arrivals.step()
            else:
                called = self.rng.random() < c
            if called:
                self._handle_call()
            if self.walk.move_due():
                self._handle_move()
        elif self.arrivals is not None:
            if self.arrivals.step():
                self._handle_call()
            elif self.rng.random() < q:
                self._handle_move()
        elif self.event_mode == "exclusive":
            u = self.rng.random()
            if u < c:
                self._handle_call()
            elif u < c + q:
                self._handle_move()
        else:
            moved = self.rng.random() < q
            called = self.rng.random() < c
            # The call is processed before the movement: the paging
            # radius strategies derive from elapsed slots/moves covers
            # everything up to the *previous* slot, so paging must see
            # the pre-move position.  (Found by the fuzz suite: with
            # move-then-call, a timer update plus a move plus a call in
            # one slot paged a radius-0 area around a stale center.)
            if called:
                self._handle_call()
            if moved:
                self._handle_move()

    def _handle_move(self) -> None:
        position = self.walk.move()
        self.meter.note_move()  # moves_total is flushed in bulk by run()
        if self.log is not None:
            self.log.append(
                MoveEvent(
                    slot=self.slot,
                    cell=position,
                    distance_from_center=self.topology.distance(
                        self.strategy.last_known, position
                    ),
                )
            )
        if self.strategy.on_move(position):
            self._perform_update(timer=False)

    def _perform_update(self, timer: bool) -> None:
        position = self.walk.position
        self.meter.charge_update()
        self.strategy.on_location_known(position)
        if self._instruments is not None:
            ins = self._instruments
            (ins.updates_timer if timer else ins.updates_move).inc()
        if self.log is not None:
            self.log.append(
                UpdateEvent(slot=self.slot, cell=position, timer_triggered=timer)
            )

    def _handle_call(self) -> None:
        position = self.walk.position
        ins = self._instruments
        polled = 0
        cycles = 0
        found = False
        for group in self.strategy.polling_groups():
            cycles += 1
            polled += len(group)
            if ins is not None:
                ins.polled_in_cycle(cycles, len(group))
            if position in group:
                found = True
                break
        if not found:
            raise SimulationError(
                f"paging failed: terminal at {position!r} not covered by "
                f"{self.strategy!r} (center {self.strategy.last_known!r}); "
                "the strategy's uncertainty tracking is broken"
            )
        self.meter.charge_paging(cells_polled=polled, cycles=cycles)
        if ins is not None:
            ins.record_call(polled, cycles)
        self.strategy.on_location_known(position)
        if self.log is not None:
            self.log.append(
                PagingEvent(
                    slot=self.slot, cell=position, cells_polled=polled, cycles=cycles
                )
            )
