"""Discrete-time PCN simulation substrate.

Single-terminal engine (chain-faithful slot semantics), multi-terminal
network with base stations and a location register, cost metering with
confidence intervals, and replicated analytic-vs-simulation validation.
"""

from .engine import SimulationEngine
from .events import EventLog, MoveEvent, PagingEvent, UpdateEvent
from .lossy import LossyUpdateEngine
from .metrics import CostMeter, MeterSnapshot
from .network import BaseStation, LocationRegister, MobileTerminal, PCNetwork
from .runner import (
    ModelComparison,
    ReplicatedResult,
    run_replicated,
    run_until_precision,
    validate_against_model,
)

__all__ = [
    "BaseStation",
    "CostMeter",
    "EventLog",
    "LocationRegister",
    "LossyUpdateEngine",
    "MeterSnapshot",
    "MobileTerminal",
    "ModelComparison",
    "MoveEvent",
    "PCNetwork",
    "PagingEvent",
    "ReplicatedResult",
    "SimulationEngine",
    "UpdateEvent",
    "run_replicated",
    "run_until_precision",
    "validate_against_model",
]
