"""Discrete-time PCN simulation substrate.

Single-terminal engine (chain-faithful slot semantics), a batched
NumPy engine for the distance strategy, multi-terminal network with
base stations and a location register, cost metering with confidence
intervals, and replicated analytic-vs-simulation validation with
optional process-pool parallelism.  The sharded fleet engine
(:mod:`repro.simulation.fleet`) scales the population axis to millions
of heterogeneous terminals with streaming metric merges and
fleet-granularity checkpoints.
"""

from .engine import SimulationEngine
from .events import EventLog, MoveEvent, PagingEvent, UpdateEvent
from .fleet import (
    FleetResult,
    FleetShardEngine,
    FleetSpec,
    ShardSnapshot,
    fleet_report,
    run_fleet,
    shard_bounds,
)
from .metrics import CostMeter, MeterSnapshot, z_score
from .network import BaseStation, LocationRegister, MobileTerminal, PCNetwork
from .runner import (
    ModelComparison,
    PartialReplication,
    ReplicatedResult,
    run_replicated,
    run_until_precision,
    validate_against_model,
)
from .vectorized import VectorizedDistanceEngine, throughput_report

__all__ = [
    "BaseStation",
    "CostMeter",
    "EventLog",
    "FleetResult",
    "FleetShardEngine",
    "FleetSpec",
    "LocationRegister",
    "LossyUpdateEngine",
    "MeterSnapshot",
    "MobileTerminal",
    "ModelComparison",
    "MoveEvent",
    "PCNetwork",
    "PagingEvent",
    "PartialReplication",
    "ReplicatedResult",
    "ShardSnapshot",
    "SimulationEngine",
    "UpdateEvent",
    "VectorizedDistanceEngine",
    "fleet_report",
    "run_fleet",
    "run_replicated",
    "shard_bounds",
    "run_until_precision",
    "throughput_report",
    "validate_against_model",
    "z_score",
]


def __getattr__(name: str):
    # LossyUpdateEngine is now a shim over repro.faults.ResilientEngine,
    # and repro.faults builds on repro.simulation.engine; importing the
    # shim lazily keeps the historical `from repro.simulation import
    # LossyUpdateEngine` working without an import cycle.
    if name == "LossyUpdateEngine":
        from .lossy import LossyUpdateEngine

        return LossyUpdateEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
