"""Shared counter-RNG primitives and the optional numba step kernels.

This module is the single home of the stateless SplitMix64 counter
randomness both batched engines draw from (it moved here from
:mod:`repro.simulation.fleet`, which re-exports the old names), plus
the jit-compiled ports of the two hot step loops:

* the **homogeneous** kernel -- one ``(d, m, q, c, U, V)`` point,
  per-terminal meters -- behind
  :class:`~repro.simulation.vectorized.VectorizedDistanceEngine` with
  ``backend != "numpy"``;
* the **fleet** kernel -- per-terminal parameter arrays, shard-level
  scalar cost accumulators -- behind
  :class:`~repro.simulation.fleet.FleetShardEngine`.

Bit-identity contract
---------------------

Each compiled kernel is a line-by-line port of the NumPy counter-mode
step in its engine: the same hash per ``(seed, stream, slot, global
terminal index)``, the same within-slot order (calls before moves), and
the same per-terminal float arithmetic (``V * polled`` then ``+ U``).
Integer meters (moves, updates, calls, polled cells, delay histograms)
and the per-terminal cost accumulators of the homogeneous kernel are
therefore **bit-identical** between the compiled and NumPy executions.
The one documented exception: the fleet kernel accumulates its
*shard-level* per-slot cost scalars terminal-by-terminal, while the
NumPy path uses dot products -- summation order differs, so those two
floats (and nothing else -- snapshot cost totals are recomputed from
the integer counters) agree to ~1e-12 relative rather than exactly.

numba is optional.  Importing this module never imports numba; the
compiled kernels are built lazily on first request (one ``kernel
.compile`` tracer span when observability is on) and memoized for the
process.  When numba is absent the engines simply keep their NumPy
counter paths -- same results, see :mod:`repro.core.backend`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..core.backend import numba_available
from ..exceptions import ParameterError
from ..geometry.hex import HexTopology
from ..geometry.line import LineTopology
from ..geometry.square import SquareTopology
from ..geometry.topology import CellTopology
from ..observability.context import current as _observability

__all__ = [
    "STREAM_CALL",
    "STREAM_DIRECTION",
    "STREAM_EVENT",
    "STREAM_RESIDENCE",
    "STREAM_RESIDENCE_BRANCH",
    "compiled_kernels",
    "counter_uniforms",
    "drifted_directions",
    "kernel_compile_info",
    "mix64",
    "slot_key",
    "terminal_keys",
    "topology_code",
]

# -- stateless counter-based randomness --------------------------------

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_SLOT_SALT = 0xD1B54A32D192ED03
_STREAM_SALT = 0x8BB84B93962EACC9
_KEY_OFFSET = 0x632BE59BD9B4E019
_GOLDEN_U64 = np.uint64(_GOLDEN)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)
_S30, _S27, _S31 = np.uint64(30), np.uint64(27), np.uint64(31)
_S11 = np.uint64(11)
_INV53 = 2.0**-53

#: Independent hash streams: slot-event classification, movement
#: direction, and the independent-mode call draw.
STREAM_EVENT, STREAM_DIRECTION, STREAM_CALL = 0, 1, 2

#: CTRW streams: residence-time inverse-CDF draw and the mixture-branch
#: pick (hyperexponential components).  Initial residences hash slot -1
#: on the same streams, which no in-run slot index ever reuses.
STREAM_RESIDENCE, STREAM_RESIDENCE_BRANCH = 3, 4


def mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer, vectorized over uint64 (wrapping) arrays."""
    x = (x ^ (x >> _S30)) * _MIX_A
    x = (x ^ (x >> _S27)) * _MIX_B
    return x ^ (x >> _S31)


def slot_key(seed: int, stream: int, slot: int) -> np.uint64:
    """One 64-bit key per ``(seed, stream, slot)``.

    Computed in Python integers (NumPy *scalar* uint64 arithmetic warns
    on wraparound; arrays do not) and finalized with the same SplitMix64
    mix as the vector side.
    """
    x = (
        seed * _GOLDEN + stream * _STREAM_SALT + slot * _SLOT_SALT
        + _KEY_OFFSET
    ) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return np.uint64((x ^ (x >> 31)) & _M64)


def terminal_keys(offset: int, count: int) -> np.ndarray:
    """Hash keys of the global terminal indices ``offset .. offset+count``."""
    return mix64(
        (np.arange(offset, offset + count, dtype=np.uint64) + np.uint64(1))
        * _GOLDEN_U64
    )


def counter_uniforms(
    idx_keys: np.ndarray, seed: int, stream: int, slot: int
) -> np.ndarray:
    """One U(0,1) per terminal for ``(stream, slot)``, layout-free."""
    h = mix64(idx_keys ^ slot_key(seed, stream, slot))
    return (h >> _S11).astype(np.float64) * _INV53


def drifted_directions(
    u: np.ndarray,
    degree: int,
    drift: float,
    drift_direction: int,
    persistence: float,
    last_directions: np.ndarray,
) -> np.ndarray:
    """Direction indices composing drift, persistence, and uniform choice.

    One uniform per mover decides the whole composition: ``u < drift``
    takes the preferred lattice direction, the next ``persistence``
    band repeats the mover's previous direction (movers without one --
    ``last_directions < 0`` -- fall back to a uniform pick over their
    band), and the remaining mass is rescaled to a uniform direction.
    Rescaling a conditioned uniform is again uniform, so the
    distribution matches the per-cell walker's two-draw composition in
    :meth:`repro.mobility.ctrw.CTRWWalk.move` exactly.
    """
    u = np.asarray(u, dtype=np.float64)
    explore = drift + persistence
    scaled = (u - explore) / (1.0 - explore)
    out = np.minimum(
        (scaled * degree).astype(np.int64), degree - 1
    )
    if persistence > 0.0:
        in_persist = (u >= drift) & (u < explore)
        has_last = last_directions >= 0
        repeat = in_persist & has_last
        out[repeat] = last_directions[repeat]
        fresh = in_persist & ~has_last
        if fresh.any():
            band = (u[fresh] - drift) / persistence
            out[fresh] = np.minimum(
                (band * degree).astype(np.int64), degree - 1
            )
    if drift > 0.0:
        out[u < drift] = drift_direction
    return out


def topology_code(topology: CellTopology) -> int:
    """Integer lattice code the kernels branch on (0/1/2 = line/hex/square)."""
    if isinstance(topology, LineTopology):
        return 0
    if isinstance(topology, HexTopology):
        return 1
    if isinstance(topology, SquareTopology):
        return 2
    raise ParameterError(
        f"compiled kernels support LineTopology, HexTopology, and "
        f"SquareTopology; got {topology!r}"
    )


# -- lazily compiled numba kernels --------------------------------------

_COMPILED: Optional[Tuple] = None
_COMPILE_SECONDS: Optional[float] = None


def kernel_compile_info() -> dict:
    """Whether the jit kernels compiled this process, and how long it took."""
    return {
        "numba_available": numba_available(),
        "compiled": _COMPILED is not None,
        "compile_seconds": _COMPILE_SECONDS,
    }


def _build_compiled():  # pragma: no cover - requires numba
    """Compile the two step kernels (called once, behind the memo)."""
    import numba

    u64 = np.uint64
    i64 = np.int64
    f64 = np.float64
    MIX_A, MIX_B = _MIX_A, _MIX_B
    S30, S27, S31, S11 = _S30, _S27, _S31, _S11
    GOLDEN = u64(_GOLDEN)
    SLOT_SALT = u64(_SLOT_SALT)
    STREAM_SALT = u64(_STREAM_SALT)
    KEY_OFFSET = u64(_KEY_OFFSET)
    INV53 = _INV53

    @numba.njit(cache=False, inline="always")
    def _mix(x):
        x = (x ^ (x >> S30)) * MIX_A
        x = (x ^ (x >> S27)) * MIX_B
        return x ^ (x >> S31)

    @numba.njit(cache=False, inline="always")
    def _key(seed, stream, slot):
        x = seed * GOLDEN + stream * STREAM_SALT + u64(slot) * SLOT_SALT
        return _mix(x + KEY_OFFSET)

    @numba.njit(cache=False, inline="always")
    def _unit(h):
        return f64(h >> S11) * INV53

    @numba.njit(cache=False, inline="always")
    def _ring(pos, k, topo):
        if topo == 0:
            return abs(pos[k, 0])
        if topo == 1:
            a = pos[k, 0]
            b = pos[k, 1]
            return (abs(a) + abs(b) + abs(a + b)) // 2
        return abs(pos[k, 0]) + abs(pos[k, 1])

    @numba.njit(cache=False, nogil=True)
    def homogeneous_step(
        pos, dirs, topo, event_mode, seed, idx_keys, slot0, slots,
        q, c, threshold, update_cost, poll_cost,
        ring_to_cycle, cum_polled,
        moves, updates, calls, polled, delay_counts,
        cost_sum, cost_sq_sum,
    ):
        K = idx_keys.shape[0]
        dims = pos.shape[1]
        degree = f64(dirs.shape[0])
        cqc = c + q
        stream_event = u64(0)
        stream_direction = u64(1)
        stream_call = u64(2)
        for t in range(slot0, slot0 + slots):
            ek = _key(seed, stream_event, t)
            dk = _key(seed, stream_direction, t)
            ck = _key(seed, stream_call, t)
            for k in range(K):
                u = _unit(_mix(idx_keys[k] ^ ek))
                if event_mode == 0:
                    call_k = u < c
                    move_k = (not call_k) and (u < cqc)
                else:
                    move_k = u < q
                    call_k = _unit(_mix(idx_keys[k] ^ ck)) < c
                slot_cost = 0.0
                if call_k:
                    cycle = ring_to_cycle[_ring(pos, k, topo)]
                    w = cum_polled[cycle]
                    calls[k] += 1
                    polled[k] += w
                    delay_counts[k, cycle] += 1
                    slot_cost = poll_cost * w
                    for j in range(dims):
                        pos[k, j] = 0
                if move_k:
                    h = _mix(idx_keys[k] ^ dk)
                    direction = i64(_unit(h) * degree)
                    for j in range(dims):
                        pos[k, j] += dirs[direction, j]
                    moves[k] += 1
                    if _ring(pos, k, topo) > threshold:
                        updates[k] += 1
                        slot_cost += update_cost
                        for j in range(dims):
                            pos[k, j] = 0
                cost_sum[k] += slot_cost
                cost_sq_sum[k] += slot_cost * slot_cost

    @numba.njit(cache=False, nogil=True)
    def fleet_step(
        pos, dirs, topo, event_mode, seed, idx_keys, slot0, slots,
        q, c, qc, threshold, update_cost, poll_cost, class_idx,
        ring_to_cycle, cum_polled,
        moves, updates, calls, polled, delay_counts,
    ):
        K = idx_keys.shape[0]
        dims = pos.shape[1]
        degree = f64(dirs.shape[0])
        stream_event = u64(0)
        stream_direction = u64(1)
        stream_call = u64(2)
        cost_sum = 0.0
        cost_sq_sum = 0.0
        for t in range(slot0, slot0 + slots):
            ek = _key(seed, stream_event, t)
            dk = _key(seed, stream_direction, t)
            ck = _key(seed, stream_call, t)
            slot_cost = 0.0
            # Calls for the whole shard first, then moves -- the same
            # within-slot order as the NumPy path.
            for k in range(K):
                u = _unit(_mix(idx_keys[k] ^ ek))
                if event_mode == 0:
                    call_k = u < c[k]
                else:
                    call_k = _unit(_mix(idx_keys[k] ^ ck)) < c[k]
                if call_k:
                    row = class_idx[k]
                    cycle = ring_to_cycle[row, _ring(pos, k, topo)]
                    w = cum_polled[row, cycle]
                    calls[k] += 1
                    polled[k] += w
                    delay_counts[cycle] += 1
                    slot_cost += poll_cost[k] * w
                    for j in range(dims):
                        pos[k, j] = 0
            for k in range(K):
                u = _unit(_mix(idx_keys[k] ^ ek))
                if event_mode == 0:
                    move_k = (not (u < c[k])) and (u < qc[k])
                else:
                    move_k = u < q[k]
                if move_k:
                    h = _mix(idx_keys[k] ^ dk)
                    direction = i64(_unit(h) * degree)
                    for j in range(dims):
                        pos[k, j] += dirs[direction, j]
                    moves[k] += 1
                    if _ring(pos, k, topo) > threshold[k]:
                        updates[k] += 1
                        slot_cost += update_cost[k]
                        for j in range(dims):
                            pos[k, j] = 0
            cost_sum += slot_cost
            cost_sq_sum += slot_cost * slot_cost
        return cost_sum, cost_sq_sum

    return homogeneous_step, fleet_step


def compiled_kernels():
    """The ``(homogeneous_step, fleet_step)`` jit pair, compiled lazily.

    Raises :class:`ParameterError` when numba is unavailable -- callers
    are expected to have resolved the backend first and only land here
    when :func:`repro.core.backend.resolve_backend` said ``"numba"``.
    """
    global _COMPILED, _COMPILE_SECONDS
    if _COMPILED is None:
        if not numba_available():
            raise ParameterError(
                "the compiled kernels need numba, which is not importable; "
                "resolve the backend through repro.core.backend first"
            )
        obs = _observability()
        tic = time.perf_counter()
        if obs.enabled:
            with obs.tracer.span("kernel.compile", backend="numba"):
                _COMPILED = _build_compiled()
        else:
            _COMPILED = _build_compiled()
        _COMPILE_SECONDS = time.perf_counter() - tic
    return _COMPILED
