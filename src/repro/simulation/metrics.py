"""Cost accounting and statistics for simulations.

The analytical model predicts *per-slot averages* (``C_u``, ``C_v``,
``C_T``); the simulator measures the same quantities empirically.  A
:class:`CostMeter` accumulates everything needed to compare the two:

* event counts (slots, moves, updates, calls, polled cells);
* cost sums, split into update and paging components;
* a running sum of squares of per-slot total cost, for a normal-
  approximation confidence interval on the mean (per-slot costs are
  i.i.d. bounded, so the CLT applies comfortably at the slot counts
  used here);
* a paging-delay histogram (polling cycles per call).
"""

from __future__ import annotations

import math
import statistics
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..exceptions import ParameterError, SimulationError

__all__ = ["CostMeter", "MeterSnapshot", "z_score"]

#: Two-sided z-scores for the common confidence levels, kept as a fast
#: path; any other level in (0, 1) is computed exactly via the normal
#: quantile function (see :func:`z_score`).
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_score(level: float) -> float:
    """Two-sided z-score for a confidence ``level`` in (0, 1).

    The common levels (0.90/0.95/0.99) come from a lookup table so the
    historical values (and every snapshot ever written with them) stay
    bit-stable; anything else -- 0.975, 0.5, 0.999 -- is computed via
    ``statistics.NormalDist().inv_cdf`` instead of raising ``KeyError``
    as the old table-only lookup did.
    """
    if isinstance(level, bool) or not isinstance(level, (int, float)):
        raise ParameterError(f"confidence level must be a number, got {level!r}")
    if not 0.0 < level < 1.0:
        raise ParameterError(
            f"confidence level must be strictly between 0 and 1, got {level}"
        )
    fast = _Z_SCORES.get(level)
    if fast is not None:
        return fast
    return statistics.NormalDist().inv_cdf(0.5 + level / 2.0)


@dataclass(frozen=True)
class MeterSnapshot:
    """Immutable summary of a finished measurement."""

    slots: int
    moves: int
    updates: int
    calls: int
    polled_cells: int
    update_cost: float
    paging_cost: float
    mean_total_cost: float
    total_cost_half_width_95: float
    mean_paging_delay: float
    delay_histogram: Dict[int, int]

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cost

    @property
    def mean_update_cost(self) -> float:
        """Empirical ``C_u`` (per slot)."""
        return self.update_cost / self.slots if self.slots else 0.0

    @property
    def mean_paging_cost(self) -> float:
        """Empirical ``C_v`` (per slot)."""
        return self.paging_cost / self.slots if self.slots else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (checkpoints, machine-readable benches).

        ``delay_histogram`` keys become strings (JSON objects cannot
        have integer keys); :meth:`from_dict` restores them.
        """
        return {
            "slots": self.slots,
            "moves": self.moves,
            "updates": self.updates,
            "calls": self.calls,
            "polled_cells": self.polled_cells,
            "update_cost": self.update_cost,
            "paging_cost": self.paging_cost,
            "mean_total_cost": self.mean_total_cost,
            "total_cost_half_width_95": self.total_cost_half_width_95,
            "mean_paging_delay": self.mean_paging_delay,
            "delay_histogram": {
                str(cycles): count
                for cycles, count in sorted(self.delay_histogram.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MeterSnapshot":
        """Inverse of :meth:`to_dict`; raises on malformed payloads."""
        try:
            return cls(
                slots=int(payload["slots"]),
                moves=int(payload["moves"]),
                updates=int(payload["updates"]),
                calls=int(payload["calls"]),
                polled_cells=int(payload["polled_cells"]),
                update_cost=float(payload["update_cost"]),
                paging_cost=float(payload["paging_cost"]),
                mean_total_cost=float(payload["mean_total_cost"]),
                total_cost_half_width_95=float(payload["total_cost_half_width_95"]),
                mean_paging_delay=float(payload["mean_paging_delay"]),
                delay_histogram={
                    int(cycles): int(count)
                    for cycles, count in dict(payload["delay_histogram"]).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(f"malformed snapshot payload: {exc}") from exc


class CostMeter:
    """Accumulates per-slot costs and event counts during a simulation."""

    def __init__(self, update_cost: float, poll_cost: float) -> None:
        if update_cost < 0 or poll_cost < 0:
            raise ParameterError(
                f"costs must be >= 0, got U={update_cost}, V={poll_cost}"
            )
        self.unit_update_cost = update_cost
        self.unit_poll_cost = poll_cost
        self.slots = 0
        self.moves = 0
        self.updates = 0
        self.calls = 0
        self.polled_cells = 0
        self._cost_sum = 0.0
        self._cost_sq_sum = 0.0
        self._slot_cost = 0.0
        self._slot_open = False
        self.delay_histogram: Counter = Counter()

    # -- per-slot protocol ---------------------------------------------

    def begin_slot(self) -> None:
        """Open a slot; every charge until :meth:`end_slot` belongs to it."""
        if self._slot_open:
            raise SimulationError("begin_slot called with a slot already open")
        self._slot_open = True
        self._slot_cost = 0.0

    def end_slot(self) -> None:
        """Close the slot and fold its cost into the running statistics."""
        if not self._slot_open:
            raise SimulationError("end_slot called without an open slot")
        self._slot_open = False
        self.slots += 1
        self._cost_sum += self._slot_cost
        self._cost_sq_sum += self._slot_cost * self._slot_cost

    # -- charges -----------------------------------------------------------

    def charge_update(self) -> None:
        """Record one location update (cost ``U``)."""
        self._require_open()
        self.updates += 1
        self._slot_cost += self.unit_update_cost

    def charge_paging(self, cells_polled: int, cycles: int) -> None:
        """Record one paging operation: ``cells_polled`` at cost ``V`` each."""
        self._require_open()
        if cells_polled < 1 or cycles < 1:
            raise SimulationError(
                f"paging must poll >= 1 cell in >= 1 cycle, got "
                f"{cells_polled} cells / {cycles} cycles"
            )
        self.calls += 1
        self.polled_cells += cells_polled
        self.delay_histogram[cycles] += 1
        self._slot_cost += self.unit_poll_cost * cells_polled

    def note_move(self) -> None:
        """Record a cell crossing (no direct cost)."""
        self._require_open()
        self.moves += 1

    def _require_open(self) -> None:
        if not self._slot_open:
            raise SimulationError("charge outside of a slot; call begin_slot first")

    # -- results ----------------------------------------------------------

    @property
    def mean_total_cost(self) -> float:
        """Empirical per-slot total cost (``C_T`` estimate)."""
        return self._cost_sum / self.slots if self.slots else 0.0

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the per-slot mean total cost.

        Any ``level`` in (0, 1) is accepted: the common levels use the
        historical z-score table, everything else the exact normal
        quantile (see :func:`z_score`).
        """
        z = z_score(level)
        if self.slots < 2:
            return (self.mean_total_cost, math.inf)
        mean = self.mean_total_cost
        var = max(self._cost_sq_sum / self.slots - mean * mean, 0.0)
        half = z * math.sqrt(var / self.slots)
        return (mean, half)

    @property
    def mean_paging_delay(self) -> float:
        """Average polling cycles per call (0 if no calls arrived)."""
        if self.calls == 0:
            return 0.0
        return sum(k * v for k, v in self.delay_histogram.items()) / self.calls

    def snapshot(self) -> MeterSnapshot:
        """Freeze the current statistics into a :class:`MeterSnapshot`."""
        mean, half = self.confidence_interval(0.95) if self.slots >= 2 else (self.mean_total_cost, math.inf)
        update_cost = self.updates * self.unit_update_cost
        paging_cost = self.polled_cells * self.unit_poll_cost
        return MeterSnapshot(
            slots=self.slots,
            moves=self.moves,
            updates=self.updates,
            calls=self.calls,
            polled_cells=self.polled_cells,
            update_cost=update_cost,
            paging_cost=paging_cost,
            mean_total_cost=mean,
            total_cost_half_width_95=half,
            mean_paging_delay=self.mean_paging_delay,
            delay_histogram=dict(self.delay_histogram),
        )
