"""Sharded million-terminal fleet simulation of the distance strategy.

:class:`~repro.simulation.vectorized.VectorizedDistanceEngine` batches
``K`` *identical* terminals; a real PCS network serves millions of
*heterogeneous* subscribers -- pedestrians, vehicles, and static
terminals whose ``(q, c, U, V, d)`` all differ (the mixed-population
setting surveyed by Bhadauria & Sharma, arXiv 1201.0140, and measured
across mobility profiles by Martin & Bajcsy, arXiv 1108.1361).  This
module scales the population axis three orders of magnitude past the
vectorized engine:

* :class:`FleetSpec` -- the whole population as per-terminal NumPy
  columns (sampled from :class:`repro.workload.Population`
  distributions, with per-profile optimal thresholds), carrying a
  SHA-256 fingerprint of the realized arrays;
* :class:`FleetShardEngine` -- the heterogeneous batched kernel: one
  contiguous shard of terminals stepped per slot with parameters held
  as arrays rather than scalars, and per-terminal paging plans grouped
  into ``(d, m)`` lookup classes;
* :func:`run_fleet` -- partitions the fleet into contiguous shards,
  runs them in-process or on a :class:`ProcessPoolExecutor` (parameter
  columns shipped to workers as memory-mapped ``.npy`` spill files, so
  a worker's RSS covers its shard, not the fleet), streams per-shard
  aggregates through the observability collect/merge path in
  shard-index order, and checkpoints at *fleet granularity* -- a killed
  run resumes with any subset of shards complete.

Shard-layout invariance
-----------------------

The kernel's randomness is **stateless and counter-based**: the event
draw for terminal ``t`` at slot ``s`` is a SplitMix64-style hash of
``(seed, stream, s, global index of t)``, not a draw from a sequential
generator.  A terminal therefore sees the *same* random trajectory no
matter which shard it lands in, which gives a contract much stronger
than statistical agreement: event totals (moves, updates, calls,
polled cells) are **exactly invariant** under the shard count and
under the executor (in-process vs worker pool).  Cost totals are dot
products of those integer counts with per-terminal float costs, summed
shard by shard -- bit-identical for a fixed shard layout regardless of
executor, exactly invariant across layouts whenever the costs are
integer-valued, and equal to ~1e-12 relative otherwise (float
summation order is the only difference).  The conformance suite pins
both contracts (``fleet-pooled-vs-inprocess`` bit identity,
``fleet-sharded-vs-single`` near-exact, ``fleet-vs-vectorized``
statistical).

Bounded memory
--------------

No per-terminal history is ever materialized: a shard holds its
parameter columns, one position array, and four per-terminal event
counters -- order 100 bytes per terminal -- and everything that leaves
the shard is an O(1) :class:`ShardSnapshot` aggregate.  The fleet bench
gate (``benchmarks/bench_throughput.py --fleet``) asserts the RSS
bound at 100k terminals in CI and 1M+ nightly.
"""

from __future__ import annotations

import hashlib
import json
import math
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.backend import resolve_backend, validate_backend
from ..core.parameters import CostParams, MobilityParams, validate_delay
from ..exceptions import ParameterError
from ..geometry.hex import HexTopology
from ..geometry.line import LineTopology
from ..geometry.square import SquareTopology
from ..geometry.topology import CellTopology
from ..observability import context as _obs_context
from ..paging import sdf_partition
from ..persist import atomic_write_json
from ..workload.profiles import Population
from .kernels import (
    _INV53,
    _S11,
    STREAM_CALL as _STREAM_CALL,
    STREAM_DIRECTION as _STREAM_DIRECTION,
    STREAM_EVENT as _STREAM_EVENT,
    compiled_kernels,
    counter_uniforms as _counter_uniforms,
    mix64 as _mix64,
    slot_key as _slot_key,
    terminal_keys as _terminal_keys,
    topology_code,
)
from .runner import _resolve_workers
from .vectorized import _EVENT_MODES, _Z95, _lattice_kernel

__all__ = [
    "FleetSpec",
    "FleetShardEngine",
    "ShardSnapshot",
    "FleetResult",
    "shard_bounds",
    "run_fleet",
    "fleet_report",
]

#: Fleet checkpoint schema version.  Extends the simulation checkpoint
#: lineage (schema v2 established topology/strategy identity pinning);
#: the fleet fingerprint additionally pins the *population* (realized
#: per-terminal arrays) and the shard layout.
_FLEET_CHECKPOINT_VERSION = 1

# The stateless counter-based randomness primitives (SplitMix64
# finalizer, slot keys, terminal keys) live in
# :mod:`repro.simulation.kernels` -- shared with the vectorized engine's
# counter backend and ported inside the jit kernels -- and are imported
# above under their historical private names.


# -- the fleet specification -------------------------------------------


def _model_class_for(topology: CellTopology):
    """The exact analytic model matching a fleet topology."""
    from ..core.models import (  # local: models imports geometry, not us
        OneDimensionalModel,
        SquareGridModel,
        TwoDimensionalModel,
    )

    if isinstance(topology, LineTopology):
        return OneDimensionalModel
    if isinstance(topology, HexTopology):
        return TwoDimensionalModel
    if isinstance(topology, SquareTopology):
        return SquareGridModel
    raise ParameterError(
        f"fleet engine supports LineTopology, HexTopology, and "
        f"SquareTopology; got {topology!r}"
    )


def _json_delay(m) -> object:
    return "inf" if m == math.inf else m


@dataclass(frozen=True)
class FleetSpec:
    """A heterogeneous population as per-terminal parameter columns.

    All columns have length ``count``; ``profile_index`` maps each
    terminal into ``profile_names`` for reporting.  ``population_seed``
    is the seed the columns were sampled with (see
    :meth:`Population.sample_arrays` -- explicit seeds are required
    precisely so this spec can be re-derived), and
    :meth:`fingerprint` digests the realized arrays for checkpoint
    identity.
    """

    topology: CellTopology
    q: np.ndarray
    c: np.ndarray
    update_cost: np.ndarray
    poll_cost: np.ndarray
    threshold: np.ndarray
    profile_index: np.ndarray
    profile_names: Tuple[str, ...]
    max_delay: float
    population_seed: int
    description: str = "custom"

    def __post_init__(self) -> None:
        validate_delay(self.max_delay)
        count = self.q.shape[0]
        if count < 1:
            raise ParameterError("FleetSpec needs at least one terminal")
        for name in ("c", "update_cost", "poll_cost", "threshold", "profile_index"):
            column = getattr(self, name)
            if column.shape != (count,):
                raise ParameterError(
                    f"FleetSpec column {name!r} has shape {column.shape}, "
                    f"expected ({count},)"
                )
        if np.any(self.q <= 0) or np.any(self.c < 0) or np.any(self.q + self.c > 1.0):
            raise ParameterError(
                "per-terminal mobility out of range: need q > 0, c >= 0, "
                "q + c <= 1 for every terminal"
            )
        if np.any(self.update_cost < 0) or np.any(self.poll_cost < 0):
            raise ParameterError("per-terminal costs must be >= 0")
        if np.any(self.threshold < 0):
            raise ParameterError("per-terminal thresholds must be >= 0")
        if np.any(self.profile_index < 0) or np.any(
            self.profile_index >= len(self.profile_names)
        ):
            raise ParameterError("profile_index out of range for profile_names")

    @property
    def count(self) -> int:
        return int(self.q.shape[0])

    def fingerprint(self) -> str:
        """SHA-256 identity of the realized population + geometry."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    repr(self.topology),
                    _json_delay(self.max_delay),
                    self.profile_names,
                    self.population_seed,
                    self.description,
                    self.count,
                )
            ).encode()
        )
        for column in (
            self.q, self.c, self.update_cost, self.poll_cost,
            self.threshold, self.profile_index,
        ):
            digest.update(np.ascontiguousarray(column).tobytes())
        return digest.hexdigest()

    def profile_counts(self) -> Dict[str, int]:
        tallies = np.bincount(self.profile_index, minlength=len(self.profile_names))
        return {name: int(n) for name, n in zip(self.profile_names, tallies)}

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_population(
        cls,
        population: Population,
        count: int,
        costs: CostParams,
        max_delay,
        seed: int,
        topology: Optional[CellTopology] = None,
        d_max: int = 40,
        convention: str = "physical",
        thresholds: Optional[Dict[str, int]] = None,
        profile_costs: Optional[Dict[str, CostParams]] = None,
    ) -> "FleetSpec":
        """Sample a fleet from population distributions.

        Per-terminal ``(q, c)`` come from
        :meth:`Population.sample_arrays` (explicit ``seed`` required);
        each terminal's threshold is its *profile's* optimal ``d``
        (solved once per archetype at the archetype's mean mobility --
        per-terminal solves would cost a million optimizations for no
        modelling gain), overridable via ``thresholds``; costs default
        to the shared ``costs`` with optional per-profile overrides.
        """
        from ..core.threshold import find_optimal_threshold  # local: cycle

        topology = topology if topology is not None else HexTopology()
        model_class = _model_class_for(topology)
        arrays = population.sample_arrays(count, seed=seed)
        per_profile_d = np.empty(len(population.profiles), dtype=np.int64)
        for i, profile in enumerate(population.profiles):
            if thresholds is not None and profile.name in thresholds:
                per_profile_d[i] = int(thresholds[profile.name])
            else:
                per_profile_d[i] = find_optimal_threshold(
                    model_class(profile.mobility),
                    costs,
                    max_delay,
                    d_max=d_max,
                    convention=convention,
                ).threshold
        per_profile_u = np.full(len(population.profiles), costs.update_cost)
        per_profile_v = np.full(len(population.profiles), costs.poll_cost)
        for i, profile in enumerate(population.profiles):
            override = (profile_costs or {}).get(profile.name)
            if override is not None:
                per_profile_u[i] = override.update_cost
                per_profile_v[i] = override.poll_cost
        return cls(
            topology=topology,
            q=arrays.q,
            c=arrays.c,
            update_cost=per_profile_u[arrays.profile_index],
            poll_cost=per_profile_v[arrays.profile_index],
            threshold=per_profile_d[arrays.profile_index],
            profile_index=arrays.profile_index,
            profile_names=arrays.profile_names,
            max_delay=validate_delay(max_delay),
            population_seed=seed,
            description=f"population:{population!r}",
        )

    @classmethod
    def homogeneous(
        cls,
        topology: CellTopology,
        threshold: int,
        mobility: MobilityParams,
        costs: CostParams,
        max_delay,
        count: int,
    ) -> "FleetSpec":
        """Every terminal identical -- the cross-check configuration the
        ``fleet-vs-vectorized`` conformance oracle compares against
        :class:`~repro.simulation.vectorized.VectorizedDistanceEngine`.
        """
        if count < 1:
            raise ParameterError(f"count must be >= 1, got {count}")
        return cls(
            topology=topology,
            q=np.full(count, mobility.move_probability),
            c=np.full(count, mobility.call_probability),
            update_cost=np.full(count, float(costs.update_cost)),
            poll_cost=np.full(count, float(costs.poll_cost)),
            threshold=np.full(count, int(threshold), dtype=np.int64),
            profile_index=np.zeros(count, dtype=np.int32),
            profile_names=("uniform",),
            max_delay=validate_delay(max_delay),
            population_seed=0,
            description=f"homogeneous:d={threshold}",
        )


# -- shard accounting ---------------------------------------------------


@dataclass(frozen=True)
class ShardSnapshot:
    """O(1) aggregate of one finished shard.

    The only thing a shard ever ships out: event totals, cost totals
    (dot products of per-terminal event counts with per-terminal
    costs), shard-level per-slot cost statistics, the aggregated
    paging-delay histogram, and a per-profile cost breakdown.
    ``mean_total_cost`` is per *terminal-slot*, so it is directly
    comparable with the analytic per-slot ``C_T``.
    """

    index: int
    start: int
    stop: int
    slots: int
    moves: int
    updates: int
    calls: int
    polled_cells: int
    update_cost: float
    paging_cost: float
    mean_total_cost: float
    total_cost_half_width_95: float
    mean_paging_delay: float
    delay_histogram: Dict[int, int]
    profile_terminals: Tuple[int, ...]
    profile_update_cost: Tuple[float, ...]
    profile_paging_cost: Tuple[float, ...]

    @property
    def terminals(self) -> int:
        return self.stop - self.start

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cost

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "slots": self.slots,
            "moves": self.moves,
            "updates": self.updates,
            "calls": self.calls,
            "polled_cells": self.polled_cells,
            "update_cost": self.update_cost,
            "paging_cost": self.paging_cost,
            "mean_total_cost": self.mean_total_cost,
            "total_cost_half_width_95": self.total_cost_half_width_95,
            "mean_paging_delay": self.mean_paging_delay,
            "delay_histogram": {
                str(cycles): count
                for cycles, count in sorted(self.delay_histogram.items())
            },
            "profile_terminals": list(self.profile_terminals),
            "profile_update_cost": list(self.profile_update_cost),
            "profile_paging_cost": list(self.profile_paging_cost),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardSnapshot":
        try:
            return cls(
                index=int(payload["index"]),
                start=int(payload["start"]),
                stop=int(payload["stop"]),
                slots=int(payload["slots"]),
                moves=int(payload["moves"]),
                updates=int(payload["updates"]),
                calls=int(payload["calls"]),
                polled_cells=int(payload["polled_cells"]),
                update_cost=float(payload["update_cost"]),
                paging_cost=float(payload["paging_cost"]),
                mean_total_cost=float(payload["mean_total_cost"]),
                total_cost_half_width_95=float(
                    payload["total_cost_half_width_95"]
                ),
                mean_paging_delay=float(payload["mean_paging_delay"]),
                delay_histogram={
                    int(cycles): int(count)
                    for cycles, count in dict(payload["delay_histogram"]).items()
                },
                profile_terminals=tuple(
                    int(v) for v in payload["profile_terminals"]
                ),
                profile_update_cost=tuple(
                    float(v) for v in payload["profile_update_cost"]
                ),
                profile_paging_cost=tuple(
                    float(v) for v in payload["profile_paging_cost"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParameterError(f"malformed shard snapshot payload: {exc}") from exc


@dataclass(frozen=True)
class FleetResult:
    """Pooled outcome of a fleet run: shard snapshots in shard order.

    Fleet totals are folded in shard-index order, so they equal the sum
    of the shard snapshot columns *exactly* -- the same accounting
    contract ``run_replicated`` keeps for replications (and the
    invariant the fleet property tests assert).
    """

    spec_fingerprint: str
    profile_names: Tuple[str, ...]
    shards: Tuple[ShardSnapshot, ...]

    @property
    def terminals(self) -> int:
        return sum(s.terminals for s in self.shards)

    @property
    def slots(self) -> int:
        return self.shards[0].slots if self.shards else 0

    @property
    def moves(self) -> int:
        return sum(s.moves for s in self.shards)

    @property
    def updates(self) -> int:
        return sum(s.updates for s in self.shards)

    @property
    def calls(self) -> int:
        return sum(s.calls for s in self.shards)

    @property
    def polled_cells(self) -> int:
        return sum(s.polled_cells for s in self.shards)

    @property
    def update_cost(self) -> float:
        return sum(s.update_cost for s in self.shards)

    @property
    def paging_cost(self) -> float:
        return sum(s.paging_cost for s in self.shards)

    @property
    def total_cost(self) -> float:
        return self.update_cost + self.paging_cost

    @property
    def terminal_slots(self) -> int:
        return sum(s.terminals * s.slots for s in self.shards)

    @property
    def mean_total_cost(self) -> float:
        """Fleet-wide mean cost per terminal-slot (empirical ``C_T``)."""
        denominator = self.terminal_slots
        return self.total_cost / denominator if denominator else 0.0

    @property
    def mean_update_cost(self) -> float:
        denominator = self.terminal_slots
        return self.update_cost / denominator if denominator else 0.0

    @property
    def mean_paging_cost(self) -> float:
        denominator = self.terminal_slots
        return self.paging_cost / denominator if denominator else 0.0

    @property
    def delay_histogram(self) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for shard in self.shards:
            for cycles, count in shard.delay_histogram.items():
                merged[cycles] = merged.get(cycles, 0) + count
        return dict(sorted(merged.items()))

    @property
    def mean_paging_delay(self) -> float:
        histogram = self.delay_histogram
        calls = sum(histogram.values())
        if not calls:
            return 0.0
        return sum(cycles * count for cycles, count in histogram.items()) / calls

    def per_profile(self) -> Dict[str, Dict[str, float]]:
        """Fleet cost breakdown per population profile."""
        out: Dict[str, Dict[str, float]] = {}
        for i, name in enumerate(self.profile_names):
            terminals = sum(s.profile_terminals[i] for s in self.shards)
            update = sum(s.profile_update_cost[i] for s in self.shards)
            paging = sum(s.profile_paging_cost[i] for s in self.shards)
            slots = self.slots
            denominator = terminals * slots
            out[name] = {
                "terminals": terminals,
                "update_cost": update,
                "paging_cost": paging,
                "mean_total_cost": (
                    (update + paging) / denominator if denominator else 0.0
                ),
            }
        return out


# -- the heterogeneous shard kernel ------------------------------------


class FleetShardEngine:
    """Batched kernel over one contiguous shard of a heterogeneous fleet.

    The :class:`VectorizedDistanceEngine` chain generalized to
    per-terminal parameter *arrays*: thresholds, mobilities, and costs
    all vary terminal by terminal, with per-terminal SDF paging plans
    grouped into ``(d, m)`` lookup classes.  Randomness is the
    stateless counter hash keyed by each terminal's *global* fleet
    index (``global_offset + local index``), which is what makes fleet
    totals invariant under the shard layout -- see the module
    docstring.

    State is O(terminals): positions, per-terminal event counters, and
    shard-level scalars.  Nothing per-slot is retained.
    """

    def __init__(
        self,
        topology: CellTopology,
        q: np.ndarray,
        c: np.ndarray,
        update_cost: np.ndarray,
        poll_cost: np.ndarray,
        threshold: np.ndarray,
        profile_index: np.ndarray,
        n_profiles: int,
        max_delay,
        global_offset: int = 0,
        seed: int = 0,
        event_mode: str = "exclusive",
        backend: str = "numpy",
    ) -> None:
        if event_mode not in _EVENT_MODES:
            raise ParameterError(
                f"event_mode must be one of {_EVENT_MODES}, got {event_mode!r}"
            )
        self.topology = topology
        self.max_delay = validate_delay(max_delay)
        self.event_mode = event_mode
        self.seed = int(seed)
        # The fleet kernel always draws from the counter RNG, so the
        # backend only selects the *execution* of the same step --
        # integer event counters are bit-identical either way (see
        # kernels.py for the one float caveat on the per-slot scalars).
        self.backend = validate_backend(backend)
        self.backend_resolved = (
            resolve_backend(backend) if backend != "numpy" else "numpy"
        )
        self.global_offset = int(global_offset)
        self._q = np.ascontiguousarray(q, dtype=np.float64)
        self._c = np.ascontiguousarray(c, dtype=np.float64)
        self._qc = self._q + self._c
        self._update_cost = np.ascontiguousarray(update_cost, dtype=np.float64)
        self._poll_cost = np.ascontiguousarray(poll_cost, dtype=np.float64)
        self._threshold = np.ascontiguousarray(threshold, dtype=np.int64)
        self._profile = np.ascontiguousarray(profile_index, dtype=np.int64)
        self.terminals = int(self._q.shape[0])
        self.n_profiles = int(n_profiles)
        if self.terminals < 1:
            raise ParameterError("shard needs at least one terminal")
        self._dirs, self._distance = _lattice_kernel(topology)
        self._degree = int(self._dirs.shape[0])
        # Per-terminal paging plans, grouped into (d, m) classes: row i
        # of the lookup tables serves every terminal whose threshold is
        # unique_d[i].  ring -> 0-based polling cycle, and cycle ->
        # cumulative cells polled (w_j of eqn (64)).
        unique_d = np.unique(self._threshold)
        self._class_idx = np.ascontiguousarray(
            np.searchsorted(unique_d, self._threshold), dtype=np.int64
        )
        plans = [sdf_partition(int(d), self.max_delay) for d in unique_d]
        max_d = int(unique_d[-1])
        self.max_cycles = max(plan.delay_bound for plan in plans)
        self._ring_to_cycle = np.zeros((len(plans), max_d + 1), dtype=np.int64)
        self._cum_polled = np.zeros((len(plans), self.max_cycles), dtype=np.int64)
        for row, plan in enumerate(plans):
            for cycle, group in enumerate(plan.subareas):
                for ring in group:
                    self._ring_to_cycle[row, ring] = cycle
            cumulative = np.asarray(
                plan.cumulative_polled(topology), dtype=np.int64
            )
            self._cum_polled[row, : cumulative.shape[0]] = cumulative
            # Pad defensively: a class never pages past its own plan's
            # delay bound, but keep the tail monotone anyway.
            self._cum_polled[row, cumulative.shape[0]:] = cumulative[-1]
        # Hash keys of the *global* terminal indices, fixed once.
        self._idx_keys = _terminal_keys(self.global_offset, self.terminals)
        self._pos = np.zeros((self.terminals, self._dirs.shape[1]), dtype=np.int64)
        self.slot = 0
        self.reset_meters()

    # ------------------------------------------------------------------

    def reset_meters(self) -> None:
        """Zero the shard's accounting (positions and slot clock kept)."""
        K = self.terminals
        self._metered_slots = 0
        self._moves = np.zeros(K, dtype=np.int64)
        self._updates = np.zeros(K, dtype=np.int64)
        self._calls = np.zeros(K, dtype=np.int64)
        self._polled = np.zeros(K, dtype=np.int64)
        self._cost_sum = 0.0
        self._cost_sq_sum = 0.0
        self._delay_counts = np.zeros(self.max_cycles, dtype=np.int64)

    def _uniforms(self, stream: int, slot: int) -> np.ndarray:
        """One U(0,1) per terminal for ``(stream, slot)``, layout-free."""
        return _counter_uniforms(self._idx_keys, self.seed, stream, slot)

    def run(self, slots: int) -> None:
        """Advance every terminal in the shard ``slots`` slots."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        if slots and self.backend_resolved == "numba":
            self._run_compiled(slots)
        else:
            for _ in range(slots):
                self._step()

    def _run_compiled(self, slots: int) -> None:  # pragma: no cover - numba
        _, fleet_step = compiled_kernels()
        cost_sum, cost_sq_sum = fleet_step(
            self._pos,
            self._dirs,
            np.int64(topology_code(self.topology)),
            np.int64(0 if self.event_mode == "exclusive" else 1),
            np.uint64(self.seed),
            self._idx_keys,
            np.int64(self.slot),
            np.int64(slots),
            self._q,
            self._c,
            self._qc,
            self._threshold,
            self._update_cost,
            self._poll_cost,
            self._class_idx,
            self._ring_to_cycle,
            self._cum_polled,
            self._moves,
            self._updates,
            self._calls,
            self._polled,
            self._delay_counts,
        )
        self._cost_sum += cost_sum
        self._cost_sq_sum += cost_sq_sum
        self._metered_slots += slots
        self.slot += slots

    def _step(self) -> None:
        t = self.slot
        u = self._uniforms(_STREAM_EVENT, t)
        called = u < self._c
        if self.event_mode == "exclusive":
            moved = (~called) & (u < self._qc)
        else:
            moved = u < self._q
            called = self._uniforms(_STREAM_CALL, t) < self._c
        slot_cost = 0.0
        # Calls first -- the same within-slot order as the per-cell and
        # vectorized engines.
        if called.any():
            slot_cost += self._handle_calls(called)
        if moved.any():
            slot_cost += self._handle_moves(moved, t)
        self._cost_sum += slot_cost
        self._cost_sq_sum += slot_cost * slot_cost
        self._metered_slots += 1
        self.slot += 1

    def _handle_calls(self, called: np.ndarray) -> float:
        rings = self._distance(self._pos[called])
        classes = self._class_idx[called]
        cycles = self._ring_to_cycle[classes, rings]
        polled = self._cum_polled[classes, cycles]
        self._calls[called] += 1
        self._polled[called] += polled
        np.add.at(self._delay_counts, cycles, 1)
        cost = float(self._poll_cost[called] @ polled)
        # Pinpointed terminals re-center: relative position resets.
        self._pos[called] = 0
        return cost

    def _handle_moves(self, moved: np.ndarray, slot: int) -> float:
        movers = np.nonzero(moved)[0]
        h = _mix64(self._idx_keys[movers] ^ _slot_key(self.seed, _STREAM_DIRECTION, slot))
        directions = (
            (h >> _S11).astype(np.float64) * _INV53 * self._degree
        ).astype(np.int64)
        self._pos[movers] += self._dirs[directions]
        self._moves[movers] += 1
        distances = self._distance(self._pos[movers])
        updating = movers[distances > self._threshold[movers]]
        cost = 0.0
        if updating.size:
            self._updates[updating] += 1
            cost = float(self._update_cost[updating].sum())
            self._pos[updating] = 0
        return cost

    # ------------------------------------------------------------------

    def snapshot(self, index: int = 0) -> ShardSnapshot:
        """Freeze the shard's aggregates (no per-terminal data leaves)."""
        slots = self._metered_slots
        K = self.terminals
        update_cost = float(
            self._updates.astype(np.float64) @ self._update_cost
        )
        paging_cost = float(self._polled.astype(np.float64) @ self._poll_cost)
        if slots:
            # Per-slot shard cost, normalized per terminal: mean and a
            # CLT half-width over slots (the batch dimension).
            mean_slot = self._cost_sum / slots / K
        else:
            mean_slot = 0.0
        if slots >= 2:
            per_terminal_sq = self._cost_sq_sum / (K * K)
            var = max(per_terminal_sq / slots - mean_slot * mean_slot, 0.0)
            half = _Z95 * math.sqrt(var / slots)
        else:
            half = math.inf
        calls = int(self._calls.sum())
        if calls:
            delay = float(
                np.arange(1, self.max_cycles + 1, dtype=np.float64)
                @ self._delay_counts
            ) / calls
        else:
            delay = 0.0
        profile_terminals = np.bincount(self._profile, minlength=self.n_profiles)
        profile_update = np.bincount(
            self._profile,
            weights=self._updates * self._update_cost,
            minlength=self.n_profiles,
        )
        profile_paging = np.bincount(
            self._profile,
            weights=self._polled * self._poll_cost,
            minlength=self.n_profiles,
        )
        return ShardSnapshot(
            index=index,
            start=self.global_offset,
            stop=self.global_offset + K,
            slots=slots,
            moves=int(self._moves.sum()),
            updates=int(self._updates.sum()),
            calls=calls,
            polled_cells=int(self._polled.sum()),
            update_cost=update_cost,
            paging_cost=paging_cost,
            mean_total_cost=mean_slot,
            total_cost_half_width_95=half,
            mean_paging_delay=delay,
            delay_histogram={
                cycle + 1: int(count)
                for cycle, count in enumerate(self._delay_counts)
                if count
            },
            profile_terminals=tuple(int(v) for v in profile_terminals),
            profile_update_cost=tuple(float(v) for v in profile_update),
            profile_paging_cost=tuple(float(v) for v in profile_paging),
        )


# -- sharding and execution --------------------------------------------


def shard_bounds(count: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous near-equal shard boundaries over ``count`` terminals."""
    if count < 1:
        raise ParameterError(f"count must be >= 1, got {count}")
    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    if shards > count:
        raise ParameterError(
            f"cannot split {count} terminals into {shards} shards"
        )
    base, extra = divmod(count, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return tuple(bounds)


#: Column order of the spill files / array bundle shipped to shards.
_SPEC_COLUMNS = (
    "q", "c", "update_cost", "poll_cost", "threshold", "profile_index"
)


def _spill_spec(spec: FleetSpec, directory: Path) -> Dict[str, str]:
    """Write the spec's columns as ``.npy`` files for memory-mapping.

    Worker processes ``np.load(..., mmap_mode="r")`` and slice their
    shard, so the fleet's parameter columns live in the OS page cache
    once instead of being pickled into every worker.
    """
    paths: Dict[str, str] = {}
    for name in _SPEC_COLUMNS:
        path = directory / f"{name}.npy"
        np.save(path, getattr(spec, name))
        paths[name] = str(path)
    return paths


def _shard_arrays(
    source: Dict[str, object], lo: int, hi: int
) -> Dict[str, np.ndarray]:
    """Materialize one shard's columns from arrays or spill paths."""
    out: Dict[str, np.ndarray] = {}
    for name in _SPEC_COLUMNS:
        column = source[name]
        if isinstance(column, str):
            column = np.load(column, mmap_mode="r")
        out[name] = np.asarray(column[lo:hi])
    return out


def _execute_shard(
    index: int,
    lo: int,
    hi: int,
    source: Dict[str, object],
    topology: CellTopology,
    n_profiles: int,
    max_delay,
    slots: int,
    seed: int,
    event_mode: str,
    observe: bool,
    backend: str = "numpy",
) -> Tuple[int, Dict[str, object], Optional[dict]]:
    """Run one shard to completion.

    Module-level so pooled workers can pickle it; the in-process path
    runs the exact same function on the exact same arrays, which is
    what makes ``workers=N`` bit-identical to a serial fleet run.
    Returns ``(index, snapshot dict, observability payload or None)``.
    """
    columns = _shard_arrays(source, lo, hi)

    def simulate() -> ShardSnapshot:
        engine = FleetShardEngine(
            topology=topology,
            n_profiles=n_profiles,
            max_delay=max_delay,
            global_offset=lo,
            seed=seed,
            event_mode=event_mode,
            backend=backend,
            **columns,
        )
        engine.run(slots)
        return engine.snapshot(index=index)

    if not observe:
        return index, simulate().to_dict(), None
    with _obs_context.session() as obs:
        with obs.tracer.span(
            "simulate.fleet_shard", shard=index, terminals=hi - lo, slots=slots
        ):
            snapshot = simulate()
        return index, snapshot.to_dict(), obs.collect_payload()


# -- fleet checkpoints --------------------------------------------------


def _fleet_fingerprint(
    spec: FleetSpec,
    bounds: Sequence[Tuple[int, int]],
    slots: int,
    seed: int,
    event_mode: str,
) -> dict:
    """The identity a fleet checkpoint must match to be resumed.

    Extends the schema-v2 campaign fingerprint idea with the realized
    *population* fingerprint and the shard layout: a checkpoint written
    for different subscribers, a different geometry, or a different
    shard partition describes different random variables (or
    incompatible partial sums) and is refused, not silently pooled.
    """
    return {
        "version": _FLEET_CHECKPOINT_VERSION,
        "population": spec.fingerprint(),
        "topology": repr(spec.topology),
        "max_delay": _json_delay(spec.max_delay),
        "terminals": spec.count,
        "bounds": [[int(lo), int(hi)] for lo, hi in bounds],
        "slots": slots,
        "seed": seed,
        "event_mode": event_mode,
    }


def _load_fleet_checkpoint(
    path: Path, fingerprint: dict
) -> Dict[int, ShardSnapshot]:
    """Read a fleet checkpoint, validating it belongs to this run."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"unreadable fleet checkpoint {path}: {exc}") from exc
    stored = payload.get("fingerprint") or {}
    version = stored.get("version")
    if version != _FLEET_CHECKPOINT_VERSION:
        raise ParameterError(
            f"fleet checkpoint {path} uses schema version {version!r}, but "
            f"this library writes version {_FLEET_CHECKPOINT_VERSION}; "
            "delete the file to restart (shard results are re-derivable -- "
            "only compute time is lost)"
        )
    if stored != fingerprint:
        raise ParameterError(
            f"fleet checkpoint {path} belongs to a different run "
            "(population/topology/shard layout/slots/seed differ); delete "
            "it or point the run at a fresh path"
        )
    return {
        int(entry["index"]): ShardSnapshot.from_dict(entry["snapshot"])
        for entry in payload["shards"]
    }


def _write_fleet_checkpoint(
    path: Path, fingerprint: dict, completed: Dict[int, ShardSnapshot]
) -> None:
    atomic_write_json(
        path,
        {
            "fingerprint": fingerprint,
            "shards": [
                {"index": index, "snapshot": completed[index].to_dict()}
                for index in sorted(completed)
            ],
        },
    )


# -- the fleet runner ---------------------------------------------------


def run_fleet(
    spec: FleetSpec,
    slots: int,
    shards: int = 1,
    seed: int = 0,
    workers: Optional[Union[int, str]] = None,
    event_mode: str = "exclusive",
    checkpoint: Optional[Union[str, Path]] = None,
    spill_dir: Optional[Union[str, Path]] = None,
    backend: str = "numpy",
) -> FleetResult:
    """Simulate a heterogeneous fleet, sharded across processes.

    ``shards`` partitions the population into contiguous blocks (the
    unit of parallelism *and* of checkpointing); ``workers`` selects
    the executor exactly as in :func:`~repro.simulation.runner.
    run_replicated` -- ``None``/``1``/``"serial"`` run in-process, an
    int > 1 dispatches shards to that many worker processes, shipping
    the parameter columns as memory-mapped spill files (``spill_dir``
    overrides where; default is a temporary directory, removed
    afterwards).  Because shard randomness is stateless in the global
    terminal index, the executor AND the shard count never change event
    totals -- see the module docstring for the exact contract.

    ``checkpoint`` names a JSON file updated atomically after every
    completed shard; a killed run rerun with the same spec, slots,
    seed, and shard count resumes with any subset of shards complete.
    ``seed`` drives event noise only -- the population is pinned by
    ``spec`` (its own ``population_seed`` is recorded in the
    fingerprint).

    ``backend`` selects the shard kernel's *execution* only
    (``"numpy"`` | ``"numba"`` | ``"auto"``, see
    :mod:`repro.core.backend`) and is deliberately **not** part of the
    checkpoint fingerprint: integer event totals are bit-identical
    across backends, so a checkpoint written by either execution is
    resumable by the other.
    """
    if slots < 1:
        raise ParameterError(f"slots must be >= 1, got {slots}")
    if event_mode not in _EVENT_MODES:
        raise ParameterError(
            f"event_mode must be one of {_EVENT_MODES}, got {event_mode!r}"
        )
    validate_backend(backend)
    bounds = shard_bounds(spec.count, shards)
    pool_size = _resolve_workers(workers)
    parent_obs = _obs_context.current()
    observe = parent_obs.enabled
    fingerprint = _fleet_fingerprint(spec, bounds, slots, seed, event_mode)
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed: Dict[int, ShardSnapshot] = {}
    if checkpoint_path is not None and checkpoint_path.exists():
        completed = _load_fleet_checkpoint(checkpoint_path, fingerprint)
    pending = [i for i in range(len(bounds)) if i not in completed]

    payloads: Dict[int, dict] = {}

    def record(index: int, snapshot_dict: Dict[str, object], payload) -> None:
        if payload is not None:
            payloads[index] = payload
        completed[index] = ShardSnapshot.from_dict(snapshot_dict)
        if checkpoint_path is not None:
            _write_fleet_checkpoint(checkpoint_path, fingerprint, completed)

    n_profiles = len(spec.profile_names)

    with parent_obs.tracer.span(
        "simulate.fleet_run",
        terminals=spec.count,
        shards=len(bounds),
        slots=slots,
        workers=pool_size or 1,
    ):
        if pool_size is None:
            source = {name: getattr(spec, name) for name in _SPEC_COLUMNS}
            for index in pending:
                lo, hi = bounds[index]
                record(*_execute_shard(
                    index, lo, hi, source, spec.topology, n_profiles,
                    spec.max_delay, slots, seed, event_mode, observe,
                    backend,
                ))
        elif pending:
            spill_root = tempfile.mkdtemp(
                prefix="fleet-spill-",
                dir=str(spill_dir) if spill_dir is not None else None,
            )
            try:
                source = _spill_spec(spec, Path(spill_root))
                with ProcessPoolExecutor(
                    max_workers=min(pool_size, len(pending))
                ) as pool:
                    futures = [
                        pool.submit(
                            _execute_shard,
                            index, *bounds[index], source, spec.topology,
                            n_profiles, spec.max_delay, slots, seed,
                            event_mode, observe, backend,
                        )
                        for index in pending
                    ]
                    for future in as_completed(futures):
                        record(*future.result())
            finally:
                shutil.rmtree(spill_root, ignore_errors=True)
        # Shard payloads (spans) merge after all shards finish, in
        # shard-index order -- as_completed order is nondeterministic,
        # and exact reproducibility needs a canonical merge order.
        for index in sorted(payloads):
            parent_obs.merge_payload(payloads[index], shard=index)
        if observe:
            # Fleet-level exact accounting: every counter is fed once
            # per shard from its snapshot, in shard-index order, so the
            # exported totals are bit-equal to summing the snapshot
            # columns regardless of the executor.
            registry = parent_obs.registry
            labels = {"engine": "fleet"}
            if backend != "numpy":
                # Non-default backends are labelled; the default keeps
                # the metric identities of existing golden exports.
                labels["backend"] = resolve_backend(backend)
            instruments = {
                "slots": registry.counter("slots_total", **labels),
                "moves": registry.counter("moves_total", **labels),
                "updates": registry.counter(
                    "updates_total", trigger="distance", **labels
                ),
                "calls": registry.counter("calls_total", **labels),
                "polled": registry.counter("polled_cells_total", **labels),
                "update_cost": registry.counter("update_cost_total", **labels),
                "paging_cost": registry.counter("paging_cost_total", **labels),
            }
            delay = registry.histogram("paging_delay_cycles", **labels)
            for index in sorted(completed):
                snapshot = completed[index]
                instruments["slots"].inc(snapshot.slots * snapshot.terminals)
                instruments["moves"].inc(snapshot.moves)
                instruments["updates"].inc(snapshot.updates)
                instruments["calls"].inc(snapshot.calls)
                instruments["polled"].inc(snapshot.polled_cells)
                instruments["update_cost"].inc(snapshot.update_cost)
                instruments["paging_cost"].inc(snapshot.paging_cost)
                for cycles, count in sorted(snapshot.delay_histogram.items()):
                    delay.observe(cycles, count)
    return FleetResult(
        spec_fingerprint=fingerprint["population"],
        profile_names=spec.profile_names,
        shards=tuple(completed[i] for i in sorted(completed)),
    )


# -- benchmarking -------------------------------------------------------


def _peak_rss_bytes() -> Dict[str, int]:
    """High-water RSS of this process and its (reaped) children."""
    import resource

    scale = 1024  # ru_maxrss is KiB on Linux
    if not hasattr(resource, "getrusage"):  # pragma: no cover - non-posix
        return {"self": 0, "children": 0}
    return {
        "self": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale,
        "children": resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        * scale,
    }


def fleet_report(
    terminals: int,
    shards: int,
    slots: int,
    workers: Optional[Union[int, str]] = None,
    seed: int = 0,
    population_seed: Optional[int] = None,
    population: Optional[Population] = None,
    costs: Optional[CostParams] = None,
    max_delay=2,
    topology: Optional[CellTopology] = None,
    d_max: int = 30,
    checkpoint: Optional[Union[str, Path]] = None,
    rss_base_budget_bytes: int = 600 * 1024 * 1024,
    rss_budget_bytes_per_terminal: float = 256.0,
    backend: str = "numpy",
) -> dict:
    """Run a fleet once and report throughput plus the RSS bound.

    The memory budget is deliberately loose -- ``base + per_terminal *
    N`` with a few hundred bytes per terminal -- because its job is to
    catch *asymptotic* regressions (anything that materializes
    per-terminal per-slot history blows through it by orders of
    magnitude), not to fight allocator noise.  Consumed by
    ``benchmarks/bench_throughput.py`` and ``repro-lm fleet --json``.
    """
    from ..workload.profiles import DEFAULT_MIX  # local: avoid cycle

    population = population if population is not None else Population(DEFAULT_MIX)
    costs = costs if costs is not None else CostParams(update_cost=50.0, poll_cost=2.0)
    tic = time.perf_counter()
    spec = FleetSpec.from_population(
        population,
        terminals,
        costs,
        max_delay,
        seed=population_seed if population_seed is not None else seed,
        topology=topology,
        d_max=d_max,
    )
    build_seconds = time.perf_counter() - tic
    tic = time.perf_counter()
    result = run_fleet(
        spec, slots=slots, shards=shards, seed=seed, workers=workers,
        checkpoint=checkpoint, backend=backend,
    )
    run_seconds = time.perf_counter() - tic
    rss = _peak_rss_bytes()
    budget = int(rss_base_budget_bytes + rss_budget_bytes_per_terminal * terminals)
    peak = max(rss["self"], rss["children"])
    return {
        "config": {
            "terminals": terminals,
            "shards": shards,
            "slots": slots,
            "workers": workers if isinstance(workers, int) else 1,
            "seed": seed,
            "backend": backend,
            "backend_resolved": (
                resolve_backend(backend) if backend != "numpy" else "numpy"
            ),
            "max_delay": _json_delay(validate_delay(max_delay)),
            "topology": repr(spec.topology),
            "population": spec.profile_counts(),
            "population_fingerprint": result.spec_fingerprint,
        },
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "terminal_slots": result.terminal_slots,
        "terminal_slots_per_sec": (
            result.terminal_slots / run_seconds if run_seconds else math.inf
        ),
        "mean_total_cost": result.mean_total_cost,
        "mean_update_cost": result.mean_update_cost,
        "mean_paging_cost": result.mean_paging_cost,
        "mean_paging_delay": result.mean_paging_delay,
        "updates": result.updates,
        "calls": result.calls,
        "moves": result.moves,
        "polled_cells": result.polled_cells,
        "per_profile": result.per_profile(),
        "peak_rss_bytes": {**rss, "max": peak},
        "rss_budget_bytes": budget,
        "rss_within_budget": peak <= budget,
    }
