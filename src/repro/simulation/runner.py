"""Replicated simulation runs with analytic comparison.

One simulation run is a sample; conclusions need replications.  The
runner executes ``replications`` independent engines (child-seeded from
one master seed), pools their per-slot statistics, and -- when asked --
compares the empirical means against the analytical model's
predictions, returning structured results the validation bench and
tests assert on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.costs import CostEvaluator
from ..core.models import MobilityModel
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology
from ..strategies.base import UpdateStrategy
from .engine import SimulationEngine
from .metrics import MeterSnapshot

__all__ = ["ReplicatedResult", "ModelComparison", "run_replicated", "validate_against_model"]

#: Factory producing a fresh strategy per replication (strategies are
#: stateful and cannot be shared across engines).
StrategyFactory = Callable[[], UpdateStrategy]


@dataclass(frozen=True)
class ReplicatedResult:
    """Pooled outcome of several independent simulation runs."""

    snapshots: List[MeterSnapshot]

    @property
    def replications(self) -> int:
        return len(self.snapshots)

    @property
    def mean_total_cost(self) -> float:
        """Grand mean of per-slot total cost across replications."""
        return float(np.mean([s.mean_total_cost for s in self.snapshots]))

    @property
    def mean_update_cost(self) -> float:
        return float(np.mean([s.mean_update_cost for s in self.snapshots]))

    @property
    def mean_paging_cost(self) -> float:
        return float(np.mean([s.mean_paging_cost for s in self.snapshots]))

    @property
    def mean_paging_delay(self) -> float:
        with_calls = [s for s in self.snapshots if s.calls > 0]
        if not with_calls:
            return 0.0
        return float(np.mean([s.mean_paging_delay for s in with_calls]))

    def total_cost_ci(self, z: float = 1.96) -> float:
        """Half-width of the CI for the grand mean (over replications).

        Uses the between-replication standard error -- the standard
        batch-means approach, robust to any within-run correlation.
        """
        if self.replications < 2:
            return math.inf
        values = [s.mean_total_cost for s in self.snapshots]
        return z * float(np.std(values, ddof=1)) / math.sqrt(self.replications)


def run_replicated(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    replications: int = 5,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
) -> ReplicatedResult:
    """Run ``replications`` independent engines and pool their snapshots.

    ``warmup_slots`` slots are simulated *before* metering begins in
    each replication, eliminating the fresh-fix transient (the terminal
    starts at ring 0, where costs are below steady state; see
    :mod:`repro.core.transient` for how long the transient lasts).
    Warm-up costs are discarded by swapping in a fresh meter.
    """
    if replications < 1:
        raise ParameterError(f"replications must be >= 1, got {replications}")
    if warmup_slots < 0:
        raise ParameterError(f"warmup_slots must be >= 0, got {warmup_slots}")
    master = np.random.SeedSequence(seed)
    snapshots: List[MeterSnapshot] = []
    for child in master.spawn(replications):
        engine = SimulationEngine(
            topology=topology,
            strategy=strategy_factory(),
            mobility=mobility,
            costs=costs,
            seed=child,
            start=start,
            event_mode=event_mode,
        )
        if warmup_slots:
            engine.run(warmup_slots)
            from .metrics import CostMeter  # local: avoid cycle at import

            engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
        snapshots.append(engine.run(slots))
    return ReplicatedResult(snapshots=snapshots)


def run_until_precision(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    target_half_width: float,
    batch_slots: int = 20_000,
    replications: int = 5,
    max_slots_per_replication: int = 2_000_000,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
) -> ReplicatedResult:
    """Extend replications in batches until the CI is tight enough.

    Runs ``replications`` persistent engines and keeps adding
    ``batch_slots`` to each until the between-replication 95% CI
    half-width of the mean total cost drops to ``target_half_width``
    (or the per-replication budget runs out -- the result is returned
    either way; check :meth:`ReplicatedResult.total_cost_ci`).
    """
    if target_half_width <= 0:
        raise ParameterError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if batch_slots < 1:
        raise ParameterError(f"batch_slots must be >= 1, got {batch_slots}")
    if replications < 2:
        raise ParameterError(
            f"need >= 2 replications for a CI, got {replications}"
        )
    master = np.random.SeedSequence(seed)
    engines: List[SimulationEngine] = []
    for child in master.spawn(replications):
        engine = SimulationEngine(
            topology=topology,
            strategy=strategy_factory(),
            mobility=mobility,
            costs=costs,
            seed=child,
            start=start,
            event_mode=event_mode,
        )
        if warmup_slots:
            engine.run(warmup_slots)
            from .metrics import CostMeter

            engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
        engines.append(engine)
    while True:
        for engine in engines:
            engine.run(batch_slots)
        result = ReplicatedResult(
            snapshots=[engine.meter.snapshot() for engine in engines]
        )
        if result.total_cost_ci() <= target_half_width:
            return result
        if engines[0].meter.slots >= max_slots_per_replication:
            return result


@dataclass(frozen=True)
class ModelComparison:
    """Analytic prediction vs simulation measurement for one point."""

    predicted_total: float
    measured_total: float
    ci_half_width: float
    predicted_update: float
    measured_update: float
    predicted_paging: float
    measured_paging: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / predicted (inf if predicted is 0)."""
        if self.predicted_total == 0:
            return math.inf if self.measured_total else 0.0
        return abs(self.measured_total - self.predicted_total) / self.predicted_total

    @property
    def within_ci(self) -> bool:
        """True if the prediction falls inside the measurement's CI."""
        return abs(self.measured_total - self.predicted_total) <= self.ci_half_width


def validate_against_model(
    model: MobilityModel,
    costs: CostParams,
    d: int,
    m,
    slots: int = 200_000,
    replications: int = 5,
    seed: int = 0,
    convention: str = "physical",
) -> ModelComparison:
    """Compare analytic ``C_u/C_v/C_T`` with a simulation at ``(d, m)``.

    Uses the *physical* boundary convention by default: the simulator
    charges an update whenever the terminal actually leaves the
    residing area, so at ``d = 0`` the empirical update rate is ``q``,
    not the paper's tabulation quirk.
    """
    from ..strategies.distance import DistanceStrategy  # local: avoid cycle

    evaluator = CostEvaluator(model, costs, convention=convention)
    breakdown = evaluator.breakdown(d, m)
    result = run_replicated(
        topology=model.topology,
        strategy_factory=lambda: DistanceStrategy(d, max_delay=m),
        mobility=model.mobility,
        costs=costs,
        slots=slots,
        replications=replications,
        seed=seed,
    )
    return ModelComparison(
        predicted_total=breakdown.total_cost,
        measured_total=result.mean_total_cost,
        ci_half_width=result.total_cost_ci(),
        predicted_update=breakdown.update_cost,
        measured_update=result.mean_update_cost,
        predicted_paging=breakdown.paging_cost,
        measured_paging=result.mean_paging_cost,
    )
