"""Replicated simulation runs with analytic comparison.

One simulation run is a sample; conclusions need replications.  The
runner executes ``replications`` independent engines (child-seeded from
one master seed), pools their per-slot statistics, and -- when asked --
compares the empirical means against the analytical model's
predictions, returning structured results the validation bench and
tests assert on.

Parallel execution
------------------

``run_replicated(..., workers=N)`` dispatches replications to a
:class:`concurrent.futures.ProcessPoolExecutor`.  Every replication is
seeded from the master :class:`numpy.random.SeedSequence` by its index
alone, so the pooled result is **bit-identical** to a serial run of the
same campaign -- parallelism changes wall-clock time, never numbers.
``workers=None``, ``workers=1``, and ``workers="serial"`` all run
in-process.  Worker processes need picklable arguments; pass
``functools.partial(DistanceStrategy, d, max_delay=m)`` rather than a
lambda as the strategy factory when using a pool.

Crash safety
------------

Long validation sweeps should survive interruption instead of losing
hours of work.  ``run_replicated(..., checkpoint=path)`` writes an
atomic JSON checkpoint (write-to-temp + rename) after *every* finished
replication -- in pooled runs, as each future completes, in whatever
order they finish; rerunning the same call resumes from the completed
indices and -- because replications are child-seeded deterministically
from the master seed -- produces bit-identical pooled results to an
uninterrupted run.  A checkpoint from a different configuration
(including a different topology, strategy, or start cell) is refused,
not silently reused.

``replication_deadline`` bounds the wall-clock seconds any single
replication may take; a replication that overruns is cut short and
reported as a structured :class:`PartialReplication` (excluded from the
pooled statistics, preserved for inspection) rather than poisoning the
campaign.  On resume, deadline-truncated indices are *retried* -- a
rerun with a longer (or no) deadline gives every replication the
chance to finish instead of silently keeping truncated snapshots out
of the pool forever.
"""

from __future__ import annotations

import json
import math
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.costs import CostEvaluator
from ..core.models import MobilityModel
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology
from ..observability import context as _obs_context
from ..persist import atomic_write_json
from ..strategies.base import UpdateStrategy
from .engine import SimulationEngine, strategy_labels
from .metrics import CostMeter, MeterSnapshot

__all__ = [
    "PartialReplication",
    "ReplicatedResult",
    "ModelComparison",
    "run_replicated",
    "validate_against_model",
]

#: Checkpoint schema version; bumped on incompatible layout changes.
#: Version 2: snapshots carry explicit replication indices (any-order
#: parallel completion) and the fingerprint includes topology,
#: strategy, and start-cell identity.
_CHECKPOINT_VERSION = 2

#: Slots simulated between deadline checks (a deadline cannot be
#: enforced mid-`engine.run`, so the run is chunked when one is set).
_DEADLINE_CHUNK_SLOTS = 5_000

#: Factory producing a fresh strategy per replication (strategies are
#: stateful and cannot be shared across engines).
StrategyFactory = Callable[[], UpdateStrategy]


@dataclass(frozen=True)
class PartialReplication:
    """A replication cut short by its deadline: what finished, and how far.

    The snapshot covers ``completed_slots`` of the ``target_slots``
    asked for; it is excluded from the campaign's pooled means (a
    shorter run is not an exchangeable sample) but kept so the caller
    can inspect or salvage it.
    """

    index: int
    completed_slots: int
    target_slots: int
    snapshot: MeterSnapshot


@dataclass(frozen=True)
class ReplicatedResult:
    """Pooled outcome of several independent simulation runs.

    ``partials`` lists replications that hit their deadline; pooled
    statistics cover the completed ``snapshots`` only.
    """

    snapshots: List[MeterSnapshot]
    partials: Tuple[PartialReplication, ...] = ()

    @property
    def replications(self) -> int:
        return len(self.snapshots)

    @property
    def mean_total_cost(self) -> float:
        """Grand mean of per-slot total cost across replications."""
        return float(np.mean([s.mean_total_cost for s in self.snapshots]))

    @property
    def mean_update_cost(self) -> float:
        return float(np.mean([s.mean_update_cost for s in self.snapshots]))

    @property
    def mean_paging_cost(self) -> float:
        return float(np.mean([s.mean_paging_cost for s in self.snapshots]))

    @property
    def mean_paging_delay(self) -> float:
        with_calls = [s for s in self.snapshots if s.calls > 0]
        if not with_calls:
            return 0.0
        return float(np.mean([s.mean_paging_delay for s in with_calls]))

    def total_cost_ci(self, z: float = 1.96) -> float:
        """Half-width of the CI for the grand mean (over replications).

        Uses the between-replication standard error -- the standard
        batch-means approach, robust to any within-run correlation.
        """
        if self.replications < 2:
            return math.inf
        values = [s.mean_total_cost for s in self.snapshots]
        return z * float(np.std(values, ddof=1)) / math.sqrt(self.replications)


def _campaign_fingerprint(
    topology: CellTopology,
    strategy_repr: str,
    start: Optional[Cell],
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    replications: int,
    seed: int,
    event_mode: str,
    warmup_slots: int,
    walker_repr: Optional[str] = None,
) -> dict:
    """The configuration identity a checkpoint must match to be resumed.

    Topology, strategy configuration (name, threshold, delay bound),
    and the start cell are part of the identity: a checkpoint written
    by a run with a different geometry or threshold describes different
    random variables and must be refused, not silently pooled.
    ``workers`` and ``replication_deadline`` are deliberately absent --
    neither changes what a completed replication computes.
    """
    fingerprint = {
        "version": _CHECKPOINT_VERSION,
        "topology": repr(topology),
        "strategy": strategy_repr,
        "start": repr(start),
        "q": mobility.move_probability,
        "c": mobility.call_probability,
        "update_cost": costs.update_cost,
        "poll_cost": costs.poll_cost,
        "slots": slots,
        "replications": replications,
        "seed": seed,
        "event_mode": event_mode,
        "warmup_slots": warmup_slots,
    }
    # Only non-default walkers enter the identity, so checkpoints from
    # earlier library versions (no walker key) keep resuming unchanged.
    if walker_repr is not None:
        fingerprint["walker"] = walker_repr
    return fingerprint


def _load_checkpoint(
    path: Path, fingerprint: dict
) -> Tuple[Dict[int, MeterSnapshot], Dict[int, PartialReplication]]:
    """Read a checkpoint, validating it belongs to this campaign.

    Returns completed snapshots and deadline-truncated partials, both
    keyed by replication index (completion order is arbitrary under a
    worker pool).
    """
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"unreadable checkpoint {path}: {exc}") from exc
    stored = payload.get("fingerprint") or {}
    version = stored.get("version")
    if version != _CHECKPOINT_VERSION:
        raise ParameterError(
            f"checkpoint {path} uses schema version {version!r}, but this "
            f"library writes version {_CHECKPOINT_VERSION} and cannot "
            "resume older checkpoints; delete the file to restart the "
            "campaign (child seeding is deterministic, so no statistical "
            "ground is lost -- only compute time)"
        )
    if stored != fingerprint:
        raise ParameterError(
            f"checkpoint {path} belongs to a different campaign "
            "(topology/strategy/start/seed/slots/replications/parameters "
            "differ); delete it or point the run at a fresh path"
        )
    completed = {
        int(entry["index"]): MeterSnapshot.from_dict(entry["snapshot"])
        for entry in payload["snapshots"]
    }
    partials = {
        int(p["index"]): PartialReplication(
            index=int(p["index"]),
            completed_slots=int(p["completed_slots"]),
            target_slots=int(p["target_slots"]),
            snapshot=MeterSnapshot.from_dict(p["snapshot"]),
        )
        for p in payload.get("partials", [])
    }
    return completed, partials


def _write_checkpoint(
    path: Path,
    fingerprint: dict,
    completed: Dict[int, MeterSnapshot],
    partials: Dict[int, PartialReplication],
) -> None:
    """Atomically persist campaign progress: write-to-temp + rename."""
    payload = {
        "fingerprint": fingerprint,
        "snapshots": [
            {"index": index, "snapshot": completed[index].to_dict()}
            for index in sorted(completed)
        ],
        "partials": [
            {
                "index": p.index,
                "completed_slots": p.completed_slots,
                "target_slots": p.target_slots,
                "snapshot": p.snapshot.to_dict(),
            }
            for _, p in sorted(partials.items())
        ],
    }
    atomic_write_json(path, payload)


def _resolve_workers(workers: Optional[Union[int, str]]) -> Optional[int]:
    """Normalize the ``workers`` argument to a pool size (None = serial)."""
    if workers is None or workers == "serial":
        return None
    if isinstance(workers, str):
        raise ParameterError(
            f"workers must be a positive int or 'serial', got {workers!r}"
        )
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ParameterError(
            f"workers must be a positive int or 'serial', got {workers!r}"
        )
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    return None if workers == 1 else workers


def _execute_replication(
    index: int,
    seed: np.random.SeedSequence,
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    start: Optional[Cell],
    event_mode: str,
    warmup_slots: int,
    replication_deadline: Optional[float],
    observe: bool = False,
    walker_factory=None,
) -> Tuple[int, MeterSnapshot, int, Optional[dict]]:
    """Run one replication to completion (or to its deadline).

    Module-level so worker processes can pickle and run it; both the
    serial and the pooled path go through this exact function, which is
    what makes ``workers=N`` bit-identical to a serial campaign.
    Returns ``(index, snapshot, completed_slots, observability)`` where
    the last element is the replication's collected metrics/spans
    payload (picklable; see
    :meth:`repro.observability.Observability.collect_payload`) when
    ``observe`` is set, else None.

    ``observe=True`` opens a *fresh* observability session around the
    replication -- in a pooled worker because the parent's context does
    not exist there, and in the serial path for symmetry, so both
    executors aggregate through the identical merge step and a campaign
    exports the same metrics regardless of ``workers``.
    """
    if not observe:
        return _run_one_replication(
            index, seed, topology, strategy_factory, mobility, costs, slots,
            start, event_mode, warmup_slots, replication_deadline,
            walker_factory,
        ) + (None,)
    with _obs_context.session() as obs:
        with obs.tracer.span(
            "simulate.replication", index=index, slots=slots
        ):
            result = _run_one_replication(
                index, seed, topology, strategy_factory, mobility, costs, slots,
                start, event_mode, warmup_slots, replication_deadline,
                walker_factory,
            )
        return result + (obs.collect_payload(),)


def _run_one_replication(
    index: int,
    seed: np.random.SeedSequence,
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    start: Optional[Cell],
    event_mode: str,
    warmup_slots: int,
    replication_deadline: Optional[float],
    walker_factory=None,
) -> Tuple[int, MeterSnapshot, int]:
    engine = SimulationEngine(
        topology=topology,
        strategy=strategy_factory(),
        mobility=mobility,
        costs=costs,
        seed=seed,
        start=start,
        event_mode=event_mode,
        walker_factory=walker_factory,
    )
    if warmup_slots:
        engine.run(warmup_slots)
        engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
    if replication_deadline is None:
        return index, engine.run(slots), slots
    deadline = time.monotonic() + replication_deadline
    remaining = slots
    while remaining > 0 and time.monotonic() < deadline:
        chunk = min(remaining, _DEADLINE_CHUNK_SLOTS)
        engine.run(chunk)
        remaining -= chunk
    return index, engine.meter.snapshot(), slots - remaining


def run_replicated(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    replications: int = 5,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
    checkpoint: Optional[Union[str, Path]] = None,
    replication_deadline: Optional[float] = None,
    workers: Optional[Union[int, str]] = None,
    walker_factory=None,
) -> ReplicatedResult:
    """Run ``replications`` independent engines and pool their snapshots.

    ``warmup_slots`` slots are simulated *before* metering begins in
    each replication, eliminating the fresh-fix transient (the terminal
    starts at ring 0, where costs are below steady state; see
    :mod:`repro.core.transient` for how long the transient lasts).
    Warm-up costs are discarded by swapping in a fresh meter.

    ``workers`` selects the executor: ``None``, ``1``, or ``"serial"``
    run in-process; an int > 1 dispatches replications to that many
    worker processes.  Replication ``i`` is always seeded by child ``i``
    of the master seed, so the pooled result is bit-identical across
    executors.  A pooled run needs picklable arguments -- use
    ``functools.partial`` rather than a lambda for the factory.

    ``checkpoint`` names a JSON file updated atomically after every
    replication (as futures complete, in any order, under a pool); an
    interrupted campaign rerun with the same arguments resumes from the
    completed indices and yields the same pooled result as an
    uninterrupted run.  ``replication_deadline`` caps any single
    replication at that many wall-clock seconds; overruns become
    :class:`PartialReplication` entries in the result, and are retried
    on a later resume.

    ``walker_factory`` overrides each engine's mobility process (see
    :class:`~repro.simulation.engine.SimulationEngine`); use a picklable
    factory such as ``CTRWSpec.walker_factory()`` under a worker pool.
    It enters the checkpoint fingerprint, so a checkpoint written with a
    different walker is refused.
    """
    if replications < 1:
        raise ParameterError(f"replications must be >= 1, got {replications}")
    if warmup_slots < 0:
        raise ParameterError(f"warmup_slots must be >= 0, got {warmup_slots}")
    if replication_deadline is not None and replication_deadline <= 0:
        raise ParameterError(
            f"replication_deadline must be > 0 seconds, got {replication_deadline}"
        )
    pool_size = _resolve_workers(workers)
    parent_obs = _obs_context.current()
    observe = parent_obs.enabled
    # One probe instance pins down the strategy's configuration (name,
    # threshold, delay bound) for the checkpoint fingerprint and
    # validates the factory before any simulation work starts.
    probe_strategy = strategy_factory()
    strategy_repr = repr(probe_strategy)
    fingerprint = _campaign_fingerprint(
        topology, strategy_repr, start, mobility, costs, slots, replications,
        seed, event_mode, warmup_slots,
        walker_repr=None if walker_factory is None else repr(walker_factory),
    )
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed: Dict[int, MeterSnapshot] = {}
    partials: Dict[int, PartialReplication] = {}
    if checkpoint_path is not None and checkpoint_path.exists():
        completed, stale_partials = _load_checkpoint(checkpoint_path, fingerprint)
        # Deadline-truncated indices are retried rather than resumed:
        # this rerun may have a longer (or no) deadline, and re-running
        # is safe because the child seed depends only on the index.
        del stale_partials
    master = np.random.SeedSequence(seed)
    children = master.spawn(replications)
    pending = [i for i in range(replications) if i not in completed]

    payloads: Dict[int, dict] = {}

    def record(
        index: int,
        snapshot: MeterSnapshot,
        completed_slots: int,
        payload: Optional[dict],
    ) -> None:
        if payload is not None:
            payloads[index] = payload
        if completed_slots < slots:
            partials[index] = PartialReplication(
                index=index,
                completed_slots=completed_slots,
                target_slots=slots,
                snapshot=snapshot,
            )
        else:
            completed[index] = snapshot
        if checkpoint_path is not None:
            _write_checkpoint(checkpoint_path, fingerprint, completed, partials)

    def job_args(index: int) -> tuple:
        return (
            index, children[index], topology, strategy_factory, mobility,
            costs, slots, start, event_mode, warmup_slots, replication_deadline,
            observe, walker_factory,
        )

    with parent_obs.tracer.span(
        "simulate.run_replicated",
        replications=replications,
        workers=pool_size or 1,
        slots=slots,
        strategy=strategy_repr,
    ):
        if pool_size is None:
            for index in pending:
                record(*_execute_replication(*job_args(index)))
        elif pending:
            try:
                pickle.dumps(
                    (topology, strategy_factory, mobility, costs, start,
                     walker_factory)
                )
            except Exception as exc:
                raise ParameterError(
                    f"workers={workers!r} runs replications in worker processes, "
                    "which requires picklable campaign arguments; the strategy "
                    "factory is usually the blocker -- pass functools.partial("
                    "DistanceStrategy, d, max_delay=m) instead of a lambda "
                    f"({exc})"
                ) from exc
            with ProcessPoolExecutor(
                max_workers=min(pool_size, len(pending))
            ) as pool:
                futures = [
                    pool.submit(_execute_replication, *job_args(index))
                    for index in pending
                ]
                for future in as_completed(futures):
                    record(*future.result())
        # Replication payloads are merged *after* all runs finish, in
        # replication-index order: ``as_completed`` yields futures in a
        # nondeterministic order, and float merging is only exactly
        # reproducible (serial == workers=N) for a canonical order.
        for index in sorted(payloads):
            parent_obs.merge_payload(payloads[index], replication=index)
        if observe:
            # Campaign-level exact cost accounting: one increment per
            # completed replication from its snapshot, in index order --
            # never per event -- so the exported totals are bit-equal to
            # summing the snapshot columns, regardless of the executor
            # (the invariant tests/properties/test_property_metrics.py
            # asserts).
            labels = dict(strategy_labels(probe_strategy), engine="per-cell")
            update_total = parent_obs.registry.counter(
                "update_cost_total", **labels
            )
            paging_total = parent_obs.registry.counter(
                "paging_cost_total", **labels
            )
            for index in sorted(completed):
                update_total.inc(completed[index].update_cost)
                paging_total.inc(completed[index].paging_cost)
    return ReplicatedResult(
        snapshots=[completed[i] for i in sorted(completed)],
        partials=tuple(partials[i] for i in sorted(partials)),
    )


def run_until_precision(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    target_half_width: float,
    batch_slots: int = 20_000,
    replications: int = 5,
    max_slots_per_replication: int = 2_000_000,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
) -> ReplicatedResult:
    """Extend replications in batches until the CI is tight enough.

    Runs ``replications`` persistent engines and keeps adding
    ``batch_slots`` to each until the between-replication 95% CI
    half-width of the mean total cost drops to ``target_half_width``
    (or the per-replication budget runs out -- the result is returned
    either way; check :meth:`ReplicatedResult.total_cost_ci`).
    """
    if target_half_width <= 0:
        raise ParameterError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if batch_slots < 1:
        raise ParameterError(f"batch_slots must be >= 1, got {batch_slots}")
    if replications < 2:
        raise ParameterError(
            f"need >= 2 replications for a CI, got {replications}"
        )
    master = np.random.SeedSequence(seed)
    engines: List[SimulationEngine] = []
    for child in master.spawn(replications):
        engine = SimulationEngine(
            topology=topology,
            strategy=strategy_factory(),
            mobility=mobility,
            costs=costs,
            seed=child,
            start=start,
            event_mode=event_mode,
        )
        if warmup_slots:
            engine.run(warmup_slots)
            engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
        engines.append(engine)
    while True:
        for engine in engines:
            engine.run(batch_slots)
        result = ReplicatedResult(
            snapshots=[engine.meter.snapshot() for engine in engines]
        )
        if result.total_cost_ci() <= target_half_width:
            return result
        if engines[0].meter.slots >= max_slots_per_replication:
            return result


@dataclass(frozen=True)
class ModelComparison:
    """Analytic prediction vs simulation measurement for one point."""

    predicted_total: float
    measured_total: float
    ci_half_width: float
    predicted_update: float
    measured_update: float
    predicted_paging: float
    measured_paging: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / predicted (inf if predicted is 0)."""
        if self.predicted_total == 0:
            return math.inf if self.measured_total else 0.0
        return abs(self.measured_total - self.predicted_total) / self.predicted_total

    @property
    def within_ci(self) -> bool:
        """True if the prediction falls inside the measurement's CI.

        An undefined CI (fewer than two replications make the half
        width infinite) is *not* agreement: the comparison had no power
        to reject anything, so this returns False rather than being
        vacuously true.
        """
        if not math.isfinite(self.ci_half_width):
            return False
        return abs(self.measured_total - self.predicted_total) <= self.ci_half_width


def validate_against_model(
    model: MobilityModel,
    costs: CostParams,
    d: int,
    m,
    slots: int = 200_000,
    replications: int = 5,
    seed: int = 0,
    convention: str = "physical",
    workers: Optional[Union[int, str]] = None,
) -> ModelComparison:
    """Compare analytic ``C_u/C_v/C_T`` with a simulation at ``(d, m)``.

    Uses the *physical* boundary convention by default: the simulator
    charges an update whenever the terminal actually leaves the
    residing area, so at ``d = 0`` the empirical update rate is ``q``,
    not the paper's tabulation quirk.

    Requires at least two replications -- with one, the between-
    replication CI is undefined and ``within_ci`` could never hold.
    """
    from ..strategies.distance import DistanceStrategy  # local: avoid cycle
    from functools import partial

    if replications < 2:
        raise ParameterError(
            "validate_against_model needs >= 2 replications for a defined "
            f"confidence interval, got {replications}"
        )
    evaluator = CostEvaluator(model, costs, convention=convention)
    breakdown = evaluator.breakdown(d, m)
    result = run_replicated(
        topology=model.topology,
        strategy_factory=partial(DistanceStrategy, d, max_delay=m),
        mobility=model.mobility,
        costs=costs,
        slots=slots,
        replications=replications,
        seed=seed,
        workers=workers,
    )
    return ModelComparison(
        predicted_total=breakdown.total_cost,
        measured_total=result.mean_total_cost,
        ci_half_width=result.total_cost_ci(),
        predicted_update=breakdown.update_cost,
        measured_update=result.mean_update_cost,
        predicted_paging=breakdown.paging_cost,
        measured_paging=result.mean_paging_cost,
    )
