"""Replicated simulation runs with analytic comparison.

One simulation run is a sample; conclusions need replications.  The
runner executes ``replications`` independent engines (child-seeded from
one master seed), pools their per-slot statistics, and -- when asked --
compares the empirical means against the analytical model's
predictions, returning structured results the validation bench and
tests assert on.

Crash safety
------------

Long validation sweeps should survive interruption instead of losing
hours of work.  ``run_replicated(..., checkpoint=path)`` writes an
atomic JSON checkpoint (write-to-temp + rename) after *every* finished
replication; rerunning the same call resumes from the completed prefix
and -- because replications are child-seeded deterministically from the
master seed -- produces bit-identical pooled results to an
uninterrupted run.  A checkpoint from a different configuration is
refused, not silently reused.

``replication_deadline`` bounds the wall-clock seconds any single
replication may take; a replication that overruns is cut short and
reported as a structured :class:`PartialReplication` (excluded from the
pooled statistics, preserved for inspection) rather than poisoning the
campaign.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from ..core.costs import CostEvaluator
from ..core.models import MobilityModel
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology
from ..strategies.base import UpdateStrategy
from .engine import SimulationEngine
from .metrics import CostMeter, MeterSnapshot

__all__ = [
    "PartialReplication",
    "ReplicatedResult",
    "ModelComparison",
    "run_replicated",
    "validate_against_model",
]

#: Checkpoint schema version; bumped on incompatible layout changes.
_CHECKPOINT_VERSION = 1

#: Slots simulated between deadline checks (a deadline cannot be
#: enforced mid-`engine.run`, so the run is chunked when one is set).
_DEADLINE_CHUNK_SLOTS = 5_000

#: Factory producing a fresh strategy per replication (strategies are
#: stateful and cannot be shared across engines).
StrategyFactory = Callable[[], UpdateStrategy]


@dataclass(frozen=True)
class PartialReplication:
    """A replication cut short by its deadline: what finished, and how far.

    The snapshot covers ``completed_slots`` of the ``target_slots``
    asked for; it is excluded from the campaign's pooled means (a
    shorter run is not an exchangeable sample) but kept so the caller
    can inspect or salvage it.
    """

    index: int
    completed_slots: int
    target_slots: int
    snapshot: MeterSnapshot


@dataclass(frozen=True)
class ReplicatedResult:
    """Pooled outcome of several independent simulation runs.

    ``partials`` lists replications that hit their deadline; pooled
    statistics cover the completed ``snapshots`` only.
    """

    snapshots: List[MeterSnapshot]
    partials: Tuple[PartialReplication, ...] = ()

    @property
    def replications(self) -> int:
        return len(self.snapshots)

    @property
    def mean_total_cost(self) -> float:
        """Grand mean of per-slot total cost across replications."""
        return float(np.mean([s.mean_total_cost for s in self.snapshots]))

    @property
    def mean_update_cost(self) -> float:
        return float(np.mean([s.mean_update_cost for s in self.snapshots]))

    @property
    def mean_paging_cost(self) -> float:
        return float(np.mean([s.mean_paging_cost for s in self.snapshots]))

    @property
    def mean_paging_delay(self) -> float:
        with_calls = [s for s in self.snapshots if s.calls > 0]
        if not with_calls:
            return 0.0
        return float(np.mean([s.mean_paging_delay for s in with_calls]))

    def total_cost_ci(self, z: float = 1.96) -> float:
        """Half-width of the CI for the grand mean (over replications).

        Uses the between-replication standard error -- the standard
        batch-means approach, robust to any within-run correlation.
        """
        if self.replications < 2:
            return math.inf
        values = [s.mean_total_cost for s in self.snapshots]
        return z * float(np.std(values, ddof=1)) / math.sqrt(self.replications)


def _campaign_fingerprint(
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    replications: int,
    seed: int,
    event_mode: str,
    warmup_slots: int,
) -> dict:
    """The configuration identity a checkpoint must match to be resumed."""
    return {
        "version": _CHECKPOINT_VERSION,
        "q": mobility.move_probability,
        "c": mobility.call_probability,
        "update_cost": costs.update_cost,
        "poll_cost": costs.poll_cost,
        "slots": slots,
        "replications": replications,
        "seed": seed,
        "event_mode": event_mode,
        "warmup_slots": warmup_slots,
    }


def _load_checkpoint(path: Path, fingerprint: dict) -> Tuple[List[MeterSnapshot], List[PartialReplication]]:
    """Read a checkpoint, validating it belongs to this campaign."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParameterError(f"unreadable checkpoint {path}: {exc}") from exc
    if payload.get("fingerprint") != fingerprint:
        raise ParameterError(
            f"checkpoint {path} belongs to a different campaign "
            "(seed/slots/replications/parameters differ); delete it or "
            "point the run at a fresh path"
        )
    snapshots = [MeterSnapshot.from_dict(s) for s in payload["snapshots"]]
    partials = [
        PartialReplication(
            index=int(p["index"]),
            completed_slots=int(p["completed_slots"]),
            target_slots=int(p["target_slots"]),
            snapshot=MeterSnapshot.from_dict(p["snapshot"]),
        )
        for p in payload.get("partials", [])
    ]
    return snapshots, partials


def _write_checkpoint(
    path: Path,
    fingerprint: dict,
    snapshots: List[MeterSnapshot],
    partials: List[PartialReplication],
) -> None:
    """Atomically persist campaign progress: write-to-temp + rename."""
    payload = {
        "fingerprint": fingerprint,
        "snapshots": [s.to_dict() for s in snapshots],
        "partials": [
            {
                "index": p.index,
                "completed_slots": p.completed_slots,
                "target_slots": p.target_slots,
                "snapshot": p.snapshot.to_dict(),
            }
            for p in partials
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def run_replicated(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    slots: int,
    replications: int = 5,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
    checkpoint: Optional[Union[str, Path]] = None,
    replication_deadline: Optional[float] = None,
) -> ReplicatedResult:
    """Run ``replications`` independent engines and pool their snapshots.

    ``warmup_slots`` slots are simulated *before* metering begins in
    each replication, eliminating the fresh-fix transient (the terminal
    starts at ring 0, where costs are below steady state; see
    :mod:`repro.core.transient` for how long the transient lasts).
    Warm-up costs are discarded by swapping in a fresh meter.

    ``checkpoint`` names a JSON file updated atomically after every
    replication; an interrupted campaign rerun with the same arguments
    resumes after its last completed replication and yields the same
    pooled result as an uninterrupted run.  ``replication_deadline``
    caps any single replication at that many wall-clock seconds;
    overruns become :class:`PartialReplication` entries in the result.
    """
    if replications < 1:
        raise ParameterError(f"replications must be >= 1, got {replications}")
    if warmup_slots < 0:
        raise ParameterError(f"warmup_slots must be >= 0, got {warmup_slots}")
    if replication_deadline is not None and replication_deadline <= 0:
        raise ParameterError(
            f"replication_deadline must be > 0 seconds, got {replication_deadline}"
        )
    fingerprint = _campaign_fingerprint(
        mobility, costs, slots, replications, seed, event_mode, warmup_slots
    )
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    snapshots: List[MeterSnapshot] = []
    partials: List[PartialReplication] = []
    if checkpoint_path is not None and checkpoint_path.exists():
        snapshots, partials = _load_checkpoint(checkpoint_path, fingerprint)
    master = np.random.SeedSequence(seed)
    children = master.spawn(replications)
    done = len(snapshots) + len(partials)
    for index in range(done, replications):
        engine = SimulationEngine(
            topology=topology,
            strategy=strategy_factory(),
            mobility=mobility,
            costs=costs,
            seed=children[index],
            start=start,
            event_mode=event_mode,
        )
        if warmup_slots:
            engine.run(warmup_slots)
            engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
        if replication_deadline is None:
            snapshots.append(engine.run(slots))
        else:
            deadline = time.monotonic() + replication_deadline
            remaining = slots
            while remaining > 0 and time.monotonic() < deadline:
                engine.run(min(remaining, _DEADLINE_CHUNK_SLOTS))
                remaining -= min(remaining, _DEADLINE_CHUNK_SLOTS)
            snapshot = engine.meter.snapshot()
            if remaining:
                partials.append(
                    PartialReplication(
                        index=index,
                        completed_slots=slots - remaining,
                        target_slots=slots,
                        snapshot=snapshot,
                    )
                )
            else:
                snapshots.append(snapshot)
        if checkpoint_path is not None:
            _write_checkpoint(checkpoint_path, fingerprint, snapshots, partials)
    return ReplicatedResult(snapshots=snapshots, partials=tuple(partials))


def run_until_precision(
    topology: CellTopology,
    strategy_factory: StrategyFactory,
    mobility: MobilityParams,
    costs: CostParams,
    target_half_width: float,
    batch_slots: int = 20_000,
    replications: int = 5,
    max_slots_per_replication: int = 2_000_000,
    seed: int = 0,
    start: Optional[Cell] = None,
    event_mode: str = "exclusive",
    warmup_slots: int = 0,
) -> ReplicatedResult:
    """Extend replications in batches until the CI is tight enough.

    Runs ``replications`` persistent engines and keeps adding
    ``batch_slots`` to each until the between-replication 95% CI
    half-width of the mean total cost drops to ``target_half_width``
    (or the per-replication budget runs out -- the result is returned
    either way; check :meth:`ReplicatedResult.total_cost_ci`).
    """
    if target_half_width <= 0:
        raise ParameterError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if batch_slots < 1:
        raise ParameterError(f"batch_slots must be >= 1, got {batch_slots}")
    if replications < 2:
        raise ParameterError(
            f"need >= 2 replications for a CI, got {replications}"
        )
    master = np.random.SeedSequence(seed)
    engines: List[SimulationEngine] = []
    for child in master.spawn(replications):
        engine = SimulationEngine(
            topology=topology,
            strategy=strategy_factory(),
            mobility=mobility,
            costs=costs,
            seed=child,
            start=start,
            event_mode=event_mode,
        )
        if warmup_slots:
            engine.run(warmup_slots)
            engine.meter = CostMeter(costs.update_cost, costs.poll_cost)
        engines.append(engine)
    while True:
        for engine in engines:
            engine.run(batch_slots)
        result = ReplicatedResult(
            snapshots=[engine.meter.snapshot() for engine in engines]
        )
        if result.total_cost_ci() <= target_half_width:
            return result
        if engines[0].meter.slots >= max_slots_per_replication:
            return result


@dataclass(frozen=True)
class ModelComparison:
    """Analytic prediction vs simulation measurement for one point."""

    predicted_total: float
    measured_total: float
    ci_half_width: float
    predicted_update: float
    measured_update: float
    predicted_paging: float
    measured_paging: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / predicted (inf if predicted is 0)."""
        if self.predicted_total == 0:
            return math.inf if self.measured_total else 0.0
        return abs(self.measured_total - self.predicted_total) / self.predicted_total

    @property
    def within_ci(self) -> bool:
        """True if the prediction falls inside the measurement's CI."""
        return abs(self.measured_total - self.predicted_total) <= self.ci_half_width


def validate_against_model(
    model: MobilityModel,
    costs: CostParams,
    d: int,
    m,
    slots: int = 200_000,
    replications: int = 5,
    seed: int = 0,
    convention: str = "physical",
) -> ModelComparison:
    """Compare analytic ``C_u/C_v/C_T`` with a simulation at ``(d, m)``.

    Uses the *physical* boundary convention by default: the simulator
    charges an update whenever the terminal actually leaves the
    residing area, so at ``d = 0`` the empirical update rate is ``q``,
    not the paper's tabulation quirk.
    """
    from ..strategies.distance import DistanceStrategy  # local: avoid cycle

    evaluator = CostEvaluator(model, costs, convention=convention)
    breakdown = evaluator.breakdown(d, m)
    result = run_replicated(
        topology=model.topology,
        strategy_factory=lambda: DistanceStrategy(d, max_delay=m),
        mobility=model.mobility,
        costs=costs,
        slots=slots,
        replications=replications,
        seed=seed,
    )
    return ModelComparison(
        predicted_total=breakdown.total_cost,
        measured_total=result.mean_total_cost,
        ci_half_width=result.total_cost_ci(),
        predicted_update=breakdown.update_cost,
        measured_update=result.mean_update_cost,
        predicted_paging=breakdown.paging_cost,
        measured_paging=result.mean_paging_cost,
    )
