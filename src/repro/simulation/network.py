"""A multi-terminal PCN model: base stations, location register, terminals.

The per-terminal :class:`~repro.simulation.engine.SimulationEngine` is
the measurement workhorse; this module adds the network-level view the
paper's introduction describes -- cells served by base stations acting
as network access points (NAPs), a location database updated by the
reporting process, and a population of independent terminals -- so
examples can study aggregate effects (signaling load distribution
across cells, register churn) that no single-terminal model exposes.

Base stations are materialized lazily: the geometries are infinite, so
a :class:`BaseStation` object is created the first time its cell is
touched (served, polled, or updated from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError, SimulationError
from ..geometry.topology import Cell, CellTopology
from ..strategies.base import UpdateStrategy
from .engine import SimulationEngine
from .metrics import MeterSnapshot

__all__ = ["BaseStation", "LocationRegister", "MobileTerminal", "PCNetwork"]


@dataclass
class BaseStation:
    """Per-cell access point with signaling and availability counters.

    ``outage_slots`` counts slots this station spent dark under
    injected outages; ``lost_updates``/``wasted_polls`` count signaling
    transactions that hit it while dark (the update never reached the
    register; the poll could not be answered).
    """

    cell: Cell
    polls_received: int = 0
    updates_received: int = 0
    outage_slots: int = 0
    lost_updates: int = 0
    wasted_polls: int = 0

    @property
    def signaling_load(self) -> int:
        """Total wireless signaling transactions at this station."""
        return self.polls_received + self.updates_received

    def availability(self, total_slots: int) -> float:
        """Fraction of ``total_slots`` this station was in service."""
        if total_slots <= 0:
            return 1.0
        return 1.0 - self.outage_slots / total_slots


class LocationRegister:
    """The network-side location database (HLR role).

    Stores, per terminal, the cell of its last location report or page
    response, plus bookkeeping counters.  In the paper's architecture
    this is the database the wireline network consults "in a timely
    fashion" on call arrival.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Cell] = {}
        self.writes = 0
        self.reads = 0

    def update(self, terminal_id: int, cell: Cell) -> None:
        """Record a fresh location fix for ``terminal_id``."""
        self._entries[terminal_id] = cell
        self.writes += 1

    def lookup(self, terminal_id: int) -> Cell:
        """Return the last recorded cell of ``terminal_id``."""
        self.reads += 1
        try:
            return self._entries[terminal_id]
        except KeyError:
            raise SimulationError(
                f"terminal {terminal_id} has no register entry"
            ) from None

    def __contains__(self, terminal_id: int) -> bool:
        return terminal_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class MobileTerminal:
    """One subscriber: an engine plus identity."""

    terminal_id: int
    engine: SimulationEngine

    @property
    def position(self) -> Cell:
        return self.engine.walk.position

    @property
    def strategy(self) -> UpdateStrategy:
        return self.engine.strategy


class PCNetwork:
    """A population of terminals sharing one geometry and one register.

    Parameters
    ----------
    topology:
        The shared cell geometry.
    costs:
        ``(U, V)`` applied to every terminal's meter.
    seed:
        Master seed; each terminal gets an independent child seed.
    """

    def __init__(
        self,
        topology: CellTopology,
        costs: CostParams,
        seed: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.costs = costs
        self.register = LocationRegister()
        self.stations: Dict[Cell, BaseStation] = {}
        self.terminals: List[MobileTerminal] = []
        self._seed_seq = np.random.SeedSequence(seed)
        self.slot = 0
        self._outage = None  # set by inject_outages
        self.signaling_lost = 0

    # -- population -----------------------------------------------------

    def add_terminal(
        self,
        strategy: UpdateStrategy,
        mobility: MobilityParams,
        start: Optional[Cell] = None,
        event_mode: str = "exclusive",
    ) -> MobileTerminal:
        """Create, register, and return a new terminal."""
        child = self._seed_seq.spawn(1)[0]
        engine = SimulationEngine(
            topology=self.topology,
            strategy=strategy,
            mobility=mobility,
            costs=self.costs,
            seed=child,
            start=start,
            event_mode=event_mode,
        )
        terminal = MobileTerminal(terminal_id=len(self.terminals), engine=engine)
        self.terminals.append(terminal)
        self.register.update(terminal.terminal_id, terminal.position)
        self._station(terminal.position)  # materialize the serving NAP
        self._instrument(terminal)
        return terminal

    def _station(self, cell: Cell) -> BaseStation:
        station = self.stations.get(cell)
        if station is None:
            station = BaseStation(cell=cell)
            self.stations[cell] = station
        return station

    def _instrument(self, terminal: MobileTerminal) -> None:
        """Wrap the engine's meter charges to feed network-level counters.

        The engine stays single-terminal and unaware of the network;
        we interpose on its meter to mirror signaling into base-station
        counters and the location register.
        """
        engine = terminal.engine
        meter = engine.meter
        original_update = meter.charge_update
        original_paging = meter.charge_paging
        network = self

        def charge_update() -> None:
            original_update()
            cell = engine.walk.position
            station = network._station(cell)
            station.updates_received += 1
            if network._is_dark(station):
                station.lost_updates += 1
                network.signaling_lost += 1
            else:
                network.register.update(terminal.terminal_id, cell)

        def charge_paging(cells_polled: int, cycles: int) -> None:
            original_paging(cells_polled, cycles)
            cell = engine.walk.position
            # Attribute the successful poll to the terminal's cell; the
            # unanswered polls are spread over the paged area, which we
            # count at the area's stations lazily only when small.
            station = network._station(cell)
            station.polls_received += 1
            if network._is_dark(station):
                station.wasted_polls += 1
                network.signaling_lost += 1
            else:
                network.register.update(terminal.terminal_id, cell)

        meter.charge_update = charge_update  # type: ignore[method-assign]
        meter.charge_paging = charge_paging  # type: ignore[method-assign]

    # -- chaos injection ---------------------------------------------------

    def inject_outages(self, rate: float, duration: int, seed: Optional[int] = None):
        """Subject base stations to random outages from the fault layer.

        Each *materialized* station goes dark with per-slot hazard
        ``rate`` for ``duration`` slots (a
        :class:`~repro.faults.BaseStationOutage` process).  While a
        station is dark, updates arriving at it are lost (the register
        keeps its stale entry) and polls through it are wasted; both
        feed the availability accounting so fleet studies can measure
        aggregate signaling degradation.  Returns the fault process for
        inspection.
        """
        from ..faults.models import BaseStationOutage  # local: faults imports simulation

        outage = BaseStationOutage(rate, duration, seed=seed)
        outage.bind(
            np.random.default_rng(self._seed_seq.spawn(1)[0]), self.topology
        )
        self._outage = outage
        return outage

    def _is_dark(self, station: BaseStation) -> bool:
        return self._outage is not None and self._outage.cell_dark(
            self.slot, station.cell
        )

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Advance every terminal by one slot."""
        if self._outage is not None:
            for station in self.stations.values():
                if self._is_dark(station):
                    station.outage_slots += 1
        for terminal in self.terminals:
            terminal.engine.step()
        self.slot += 1

    def run(self, slots: int) -> None:
        """Advance the whole network ``slots`` slots."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        for _ in range(slots):
            self.step()

    # -- reporting ----------------------------------------------------------

    def snapshots(self) -> List[MeterSnapshot]:
        """Per-terminal metric snapshots, in terminal-id order."""
        return [t.engine.meter.snapshot() for t in self.terminals]

    def aggregate_mean_cost(self) -> float:
        """Population mean of per-slot total cost across terminals."""
        snaps = self.snapshots()
        if not snaps:
            return 0.0
        return float(np.mean([s.mean_total_cost for s in snaps]))

    def busiest_stations(self, count: int = 5) -> List[Tuple[Cell, int]]:
        """The ``count`` stations with the highest signaling load."""
        ranked = sorted(
            self.stations.values(), key=lambda s: (-s.signaling_load, str(s.cell))
        )
        return [(s.cell, s.signaling_load) for s in ranked[:count]]

    def mean_availability(self) -> float:
        """Mean in-service fraction across materialized stations."""
        if not self.stations or self.slot == 0:
            return 1.0
        return float(
            np.mean([s.availability(self.slot) for s in self.stations.values()])
        )

    def degraded_signaling_fraction(self) -> float:
        """Fraction of signaling transactions lost to dark stations."""
        total = sum(s.signaling_load for s in self.stations.values())
        if total == 0:
            return 0.0
        return self.signaling_lost / total

    def availability_report(self, count: int = 5) -> List[Tuple[Cell, float, int]]:
        """The ``count`` least-available stations: (cell, availability,
        lost transactions)."""
        ranked = sorted(
            self.stations.values(),
            key=lambda s: (s.availability(self.slot), str(s.cell)),
        )
        return [
            (s.cell, s.availability(self.slot), s.lost_updates + s.wasted_polls)
            for s in ranked[:count]
        ]
