"""Event records for simulation tracing.

The engine can optionally log a structured event stream -- useful for
debugging a strategy, for unit tests that assert on exact protocol
behavior, and for the examples that narrate what happened.  Recording
is off by default; a million-slot run should not build a million
objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..geometry.topology import Cell

__all__ = ["MoveEvent", "UpdateEvent", "PagingEvent", "EventLog"]


@dataclass(frozen=True)
class MoveEvent:
    """The terminal crossed into ``cell`` during ``slot``."""

    slot: int
    cell: Cell
    distance_from_center: int


@dataclass(frozen=True)
class UpdateEvent:
    """The terminal transmitted a location update from ``cell``."""

    slot: int
    cell: Cell
    #: True if a timer (not a movement) triggered the update.
    timer_triggered: bool


@dataclass(frozen=True)
class PagingEvent:
    """The network paged the terminal and found it in ``cell``."""

    slot: int
    cell: Cell
    cells_polled: int
    cycles: int


class EventLog:
    """Append-only container for simulation events."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        """``capacity`` bounds memory; the oldest events are NOT evicted --
        recording simply stops (with a flag) so tests notice truncation."""
        self.capacity = capacity
        self.truncated = False
        self._events: List[object] = []

    def append(self, event: object) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.truncated = True
            return
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def of_type(self, kind) -> List[object]:
        """All recorded events of class ``kind``, in order."""
        return [e for e in self._events if isinstance(e, kind)]
