"""Batched NumPy simulation of the distance strategy.

:class:`VectorizedDistanceEngine` simulates ``K`` independent terminals
of the distance-based scheme as one batched ring-distance chain: a
single ``rng.random(K)`` event draw per slot classifies every terminal
as call / movement / idle, and threshold tests, resets, and cost
accumulation are plain NumPy array operations.  On this container it
delivers two to three orders of magnitude more terminal-slots per
second than stepping :class:`~repro.simulation.engine.SimulationEngine`
instances one cell at a time.

Exactness
---------

The fast path is *exact*, not an approximation of the per-cell engine:
terminals are tracked by their true lattice coordinates **relative to
the current center cell** (the cell of the last update or page hit),
so ring distances, update triggers, and paging costs are computed from
the same geometry the cell-level engine walks.  In particular it does
NOT use the paper's ring-aggregated transition probabilities
``p+(i)/p-(i)`` -- corner/edge cell effects on the hex and square grids
are reproduced faithfully.  Beyond the uniform walk, the engine runs
CTRW mobility (``walk=CTRWSpec(...)``): per-terminal residence clocks
on dedicated counter-RNG streams, with drift/persistence direction
composition (see :mod:`repro.mobility.ctrw` for the timed slot
semantics).  What the vectorized engine *cannot* do is everything that
needs per-event hooks: event logs, fault models, arbitrary walker
classes or arrival processes, and non-distance strategies all require
:class:`~repro.simulation.engine.SimulationEngine`.

Because only relative coordinates are tracked, the absolute start cell
is irrelevant (both supported geometries are vertex-transitive), and a
paging hit or update simply resets a terminal's relative position to
the origin.

Statistical contract
--------------------

Each terminal gets its own meter; :meth:`VectorizedDistanceEngine.run`
returns a :class:`~repro.simulation.runner.ReplicatedResult` whose
per-terminal :class:`~repro.simulation.metrics.MeterSnapshot` entries
follow exactly the accounting of :class:`CostMeter` -- so the usual
pooled means and between-replication confidence intervals apply
unchanged, and agreement with ``SimulationEngine`` campaigns can be
asserted within CI.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional, Tuple

import numpy as np

from ..core.backend import (
    numba_available,
    resolve_backend,
    use_numpy_fallback,
    validate_backend,
)
from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..geometry.hex import AXIAL_DIRECTIONS, HexTopology
from ..geometry.line import LineTopology
from ..geometry.square import SQUARE_DIRECTIONS, SquareTopology
from ..geometry.topology import CellTopology
from ..observability.context import current as _observability
from ..paging import PagingPlan, sdf_partition
from ..core.parameters import validate_delay, validate_threshold
from ..mobility.ctrw import CTRWSpec
from .kernels import (
    STREAM_CALL,
    STREAM_DIRECTION,
    STREAM_EVENT,
    STREAM_RESIDENCE,
    STREAM_RESIDENCE_BRANCH,
    compiled_kernels,
    counter_uniforms,
    drifted_directions,
    mix64,
    slot_key,
    terminal_keys,
    topology_code,
)
from .metrics import MeterSnapshot
from .runner import ReplicatedResult

__all__ = [
    "VectorizedDistanceEngine",
    "compare_backends_report",
    "replay_trace_meters",
    "throughput_report",
]

_EVENT_MODES = ("exclusive", "independent")

#: z-score matching CostMeter's 95% half-width.
_Z95 = 1.96


def _lattice_kernel(topology: CellTopology) -> Tuple[np.ndarray, callable]:
    """Direction vectors and a vectorized ring-distance function.

    Returns ``(directions, distance)`` where ``directions`` has shape
    ``(degree, dims)`` and ``distance`` maps an ``(K, dims)`` array of
    center-relative coordinates to ``(K,)`` ring distances.
    """
    if isinstance(topology, LineTopology):
        dirs = np.array([[-1], [1]], dtype=np.int64)
        return dirs, lambda pos: np.abs(pos[:, 0])
    if isinstance(topology, HexTopology):
        dirs = np.array(AXIAL_DIRECTIONS, dtype=np.int64)

        def hex_distance(pos: np.ndarray) -> np.ndarray:
            q, r = pos[:, 0], pos[:, 1]
            return (np.abs(q) + np.abs(r) + np.abs(q + r)) // 2

        return dirs, hex_distance
    if isinstance(topology, SquareTopology):
        dirs = np.array(SQUARE_DIRECTIONS, dtype=np.int64)
        return dirs, lambda pos: np.abs(pos[:, 0]) + np.abs(pos[:, 1])
    raise ParameterError(
        f"VectorizedDistanceEngine supports LineTopology, HexTopology, and "
        f"SquareTopology; got {topology!r} -- use SimulationEngine for "
        "other geometries"
    )


class VectorizedDistanceEngine:
    """K independent distance-strategy terminals as one NumPy chain.

    Parameters
    ----------
    topology:
        Cell geometry (line, hex, or square grid).
    threshold:
        Update threshold distance ``d`` in rings.
    mobility:
        ``(q, c)`` parameters, shared by all terminals.
    costs:
        ``(U, V)`` cost weights.
    max_delay:
        Paging delay bound ``m``; ignored when ``plan`` is given.
    plan:
        Optional explicit :class:`~repro.paging.PagingPlan` overriding
        the SDF default.
    terminals:
        Batch width ``K`` -- how many independent terminals to step per
        slot.
    seed:
        Seeds the engine's private RNG (any
        :class:`numpy.random.SeedSequence`-compatible seed).
    event_mode:
        ``"exclusive"`` (chain-faithful, default) or ``"independent"``
        -- same slot semantics as :class:`SimulationEngine`.
    backend:
        ``"numpy"`` (default) keeps the historical sequential-PCG64
        step, preserving every committed golden value.  ``"numba"`` or
        ``"auto"`` switch the engine to the stateless SplitMix64
        *counter* RNG (the fleet engine's randomness) and -- when numba
        is importable -- run the jit-compiled step kernel; without
        numba the bit-identical NumPy port of the same kernel runs
        instead, so results never depend on whether numba is installed.
        Counter mode requires an integer ``seed`` (``None`` means 0).
    """

    def __init__(
        self,
        topology: CellTopology,
        threshold: int,
        mobility: MobilityParams,
        costs: CostParams,
        max_delay=1,
        plan: Optional[PagingPlan] = None,
        terminals: int = 1024,
        seed=None,
        event_mode: str = "exclusive",
        backend: str = "numpy",
        walk: Optional[CTRWSpec] = None,
        record_ring_hits: bool = False,
    ) -> None:
        if event_mode not in _EVENT_MODES:
            raise ParameterError(
                f"event_mode must be one of {_EVENT_MODES}, got {event_mode!r}"
            )
        if terminals < 1:
            raise ParameterError(f"terminals must be >= 1, got {terminals}")
        if walk is not None and not isinstance(walk, CTRWSpec):
            raise ParameterError(
                f"walk must be a CTRWSpec (or None for the paper's uniform "
                f"walk), got {walk!r}"
            )
        self.topology = topology
        self.threshold = validate_threshold(threshold)
        validate_delay(max_delay)
        self.mobility = mobility
        self.costs = costs
        self.event_mode = event_mode
        self.terminals = int(terminals)
        self.walk_spec = walk
        self.backend = validate_backend(backend)
        # Timed (CTRW) mobility always runs the stateless counter RNG:
        # per-terminal residence clocks need layout-free per-slot
        # streams.  The compiled homogeneous kernel does not implement
        # residence clocks yet, so the NumPy port of the counter step
        # is the resolved backend whatever was requested.
        self._counter_mode = walk is not None or self.backend != "numpy"
        if walk is not None:
            self.backend_resolved = "numpy"
        else:
            self.backend_resolved = (
                resolve_backend(self.backend) if self._counter_mode else "numpy"
            )
        if self._counter_mode:
            if seed is None:
                seed = 0
            if not isinstance(seed, (int, np.integer)):
                raise ParameterError(
                    f"the counter RNG (backend={self.backend!r}, "
                    f"walk={'set' if walk is not None else 'None'}) needs an "
                    f"integer seed; got {seed!r}"
                )
            self._seed = int(seed)
            self._idx_keys = terminal_keys(0, self.terminals)
        self.rng = np.random.default_rng(seed)
        if plan is not None and plan.threshold != self.threshold:
            raise ParameterError(
                f"plan is for threshold {plan.threshold}, engine uses "
                f"{self.threshold}"
            )
        self.plan = plan if plan is not None else sdf_partition(self.threshold, max_delay)
        self._dirs, self._distance = _lattice_kernel(topology)
        # Paging lookup tables: ring index -> 0-based polling cycle, and
        # cycle -> cumulative cells polled (w_j of eqn (64)).
        ring_to_cycle = np.empty(self.threshold + 1, dtype=np.int64)
        for cycle, group in enumerate(self.plan.subareas):
            for ring in group:
                ring_to_cycle[ring] = cycle
        self._ring_to_cycle = ring_to_cycle
        self._cumulative_polled = np.asarray(
            self.plan.cumulative_polled(topology), dtype=np.int64
        )
        # Center-relative positions: the whole batch starts freshly
        # fixed at its (arbitrary) start cells.
        self._pos = np.zeros((self.terminals, self._dirs.shape[1]), dtype=np.int64)
        if walk is not None:
            degree = self._dirs.shape[0]
            if walk.drift_direction >= degree:
                raise ParameterError(
                    f"drift_direction {walk.drift_direction} out of range for "
                    f"{topology!r} (degree {degree})"
                )
            # Initial residences hash slot -1: in-run resamples use the
            # current slot index, which is always >= 0.
            self._residence = walk.residence.from_uniforms(
                counter_uniforms(
                    self._idx_keys, self._seed, STREAM_RESIDENCE_BRANCH, -1
                ),
                counter_uniforms(self._idx_keys, self._seed, STREAM_RESIDENCE, -1),
            )
            self._last_dir = np.full(self.terminals, -1, dtype=np.int64)
        self._record_ring_hits = bool(record_ring_hits)
        self.slot = 0
        # Metric handles, resolved once at construction (None when no
        # observability session is installed).  The vectorized engine
        # reports in bulk per run() call -- per-slot instrumentation
        # would defeat the point of batching.
        obs = _observability()
        if obs.enabled:
            labels = {
                "strategy": "distance",
                "d": self.threshold,
                "engine": "vectorized",
            }
            if self._counter_mode:
                # Only non-default backends are labelled, so the metric
                # identities of existing golden exports are untouched.
                labels["backend"] = self.backend_resolved
            registry = obs.registry
            self._tracer = obs.tracer
            self._instruments = {
                "slots": registry.counter("slots_total", **labels),
                "moves": registry.counter("moves_total", **labels),
                "updates": registry.counter(
                    "updates_total", trigger="distance", **labels
                ),
                "calls": registry.counter("calls_total", **labels),
                "polled": registry.counter("polled_cells_total", **labels),
                "delay": registry.histogram("paging_delay_cycles", **labels),
                "update_cost": registry.counter("update_cost_total", **labels),
                "paging_cost": registry.counter("paging_cost_total", **labels),
            }
        else:
            self._tracer = None
            self._instruments = None
        self.reset_meters()

    # ------------------------------------------------------------------

    def reset_meters(self) -> None:
        """Zero every terminal's meter (positions and RNG are kept).

        The vectorized analogue of swapping a fresh
        :class:`~repro.simulation.metrics.CostMeter` into an engine
        after warm-up slots.
        """
        K = self.terminals
        cycles = self.plan.delay_bound
        self._metered_slots = 0
        self._moves = np.zeros(K, dtype=np.int64)
        self._updates = np.zeros(K, dtype=np.int64)
        self._calls = np.zeros(K, dtype=np.int64)
        self._polled_cells = np.zeros(K, dtype=np.int64)
        self._cost_sum = np.zeros(K, dtype=np.float64)
        self._cost_sq_sum = np.zeros(K, dtype=np.float64)
        self._delay_counts = np.zeros((K, cycles), dtype=np.int64)
        self._ring_hits = (
            np.zeros(self.threshold + 1, dtype=np.int64)
            if self._record_ring_hits
            else None
        )

    def ring_hit_distribution(self) -> np.ndarray:
        """Empirical ring occupancy at call times (sums to 1).

        Requires the engine to have been built with
        ``record_ring_hits=True`` and to have metered at least one
        call.  This is the simulated location distribution the
        empirical paging optimizer feeds into
        :func:`repro.paging.optimal_contiguous_partition`.
        """
        if self._ring_hits is None:
            raise ParameterError(
                "ring hits are not recorded; build the engine with "
                "record_ring_hits=True"
            )
        total = int(self._ring_hits.sum())
        if total == 0:
            raise ParameterError(
                "no calls metered yet; run more slots before asking for the "
                "ring-hit distribution"
            )
        return self._ring_hits.astype(np.float64) / total

    def run(self, slots: int) -> ReplicatedResult:
        """Advance every terminal ``slots`` slots; return pooled results."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        if self._instruments is None:
            self._advance(slots)
            return self.result()
        before = (
            self._moves.copy(),
            self._updates.copy(),
            self._calls.copy(),
            self._polled_cells.copy(),
            self._delay_counts.copy(),
        )
        with self._tracer.span(
            "simulate.vectorized_run",
            slots=slots,
            terminals=self.terminals,
            threshold=self.threshold,
        ):
            self._advance(slots)
        self._record_run(before, slots)
        return self.result()

    def _advance(self, slots: int) -> None:
        """Run ``slots`` steps on whichever backend resolution picked."""
        if slots == 0:
            return
        if self.walk_spec is not None:
            for _ in range(slots):
                self._step_ctrw()
        elif self._counter_mode and self.backend_resolved == "numba":
            self._run_compiled(slots)
        elif self._counter_mode:
            for _ in range(slots):
                self._step_counter()
        else:
            for _ in range(slots):
                self._step()

    def _run_compiled(self, slots: int) -> None:  # pragma: no cover - numba
        homogeneous_step, _ = compiled_kernels()
        homogeneous_step(
            self._pos,
            self._dirs,
            np.int64(topology_code(self.topology)),
            np.int64(0 if self.event_mode == "exclusive" else 1),
            np.uint64(self._seed),
            self._idx_keys,
            np.int64(self.slot),
            np.int64(slots),
            float(self.mobility.move_probability),
            float(self.mobility.call_probability),
            np.int64(self.threshold),
            float(self.costs.update_cost),
            float(self.costs.poll_cost),
            self._ring_to_cycle,
            self._cumulative_polled,
            self._moves,
            self._updates,
            self._calls,
            self._polled_cells,
            self._delay_counts,
            self._cost_sum,
            self._cost_sq_sum,
        )
        self._metered_slots += slots
        self.slot += slots

    def _record_run(self, before: tuple, slots: int) -> None:
        """Fold one observed run() into the metrics registry.

        Event counts report as bulk deltas; the cost counters are fed
        one per-terminal increment in terminal order (integer event
        delta times unit cost), so for a fresh-meter single run the
        exported ``update_cost_total``/``paging_cost_total`` are
        bit-equal to summing the per-terminal snapshot columns -- the
        same exactness contract :func:`~repro.simulation.runner.
        run_replicated` keeps for the per-cell engine.
        """
        ins = self._instruments
        moves0, updates0, calls0, polled0, delays0 = before
        d_updates = self._updates - updates0
        d_polled = self._polled_cells - polled0
        ins["slots"].inc(int(slots) * self.terminals)
        ins["moves"].inc(int((self._moves - moves0).sum()))
        ins["updates"].inc(int(d_updates.sum()))
        ins["calls"].inc(int((self._calls - calls0).sum()))
        ins["polled"].inc(int(d_polled.sum()))
        for cycle, count in enumerate((self._delay_counts - delays0).sum(axis=0)):
            if count:
                ins["delay"].observe(cycle + 1, int(count))
        U, V = self.costs.update_cost, self.costs.poll_cost
        update_cost, paging_cost = ins["update_cost"], ins["paging_cost"]
        for k in range(self.terminals):
            update_cost.inc(int(d_updates[k]) * U)
            paging_cost.inc(int(d_polled[k]) * V)

    def result(self) -> ReplicatedResult:
        """Freeze the current per-terminal meters into a pooled result."""
        return ReplicatedResult(snapshots=self.snapshots())

    def snapshots(self) -> List[MeterSnapshot]:
        """One :class:`MeterSnapshot` per terminal (CostMeter semantics)."""
        out: List[MeterSnapshot] = []
        slots = self._metered_slots
        U, V = self.costs.update_cost, self.costs.poll_cost
        for k in range(self.terminals):
            if slots:
                mean = self._cost_sum[k] / slots
            else:
                mean = 0.0
            if slots >= 2:
                var = max(self._cost_sq_sum[k] / slots - mean * mean, 0.0)
                half = _Z95 * math.sqrt(var / slots)
            else:
                half = math.inf
            calls = int(self._calls[k])
            counts = self._delay_counts[k]
            if calls:
                delay = float(
                    np.arange(1, counts.size + 1, dtype=np.float64) @ counts
                ) / calls
            else:
                delay = 0.0
            out.append(
                MeterSnapshot(
                    slots=slots,
                    moves=int(self._moves[k]),
                    updates=int(self._updates[k]),
                    calls=calls,
                    polled_cells=int(self._polled_cells[k]),
                    update_cost=int(self._updates[k]) * U,
                    paging_cost=int(self._polled_cells[k]) * V,
                    mean_total_cost=float(mean),
                    total_cost_half_width_95=float(half),
                    mean_paging_delay=delay,
                    delay_histogram={
                        cycle + 1: int(count)
                        for cycle, count in enumerate(counts)
                        if count
                    },
                )
            )
        return out

    # -- internals --------------------------------------------------------

    def _step(self) -> None:
        c = self.mobility.call_probability
        q = self.mobility.move_probability
        if self.event_mode == "exclusive":
            u = self.rng.random(self.terminals)
            called = u < c
            moved = (u >= c) & (u < c + q)
        else:
            moved = self.rng.random(self.terminals) < q
            called = self.rng.random(self.terminals) < c
        slot_cost = np.zeros(self.terminals, dtype=np.float64)
        # Calls first -- same within-slot order as SimulationEngine's
        # independent mode; in exclusive mode the events are disjoint
        # and the order is immaterial.
        if called.any():
            self._handle_calls(called, slot_cost)
        if moved.any():
            self._handle_moves(moved, slot_cost)
        self._cost_sum += slot_cost
        self._cost_sq_sum += slot_cost * slot_cost
        self._metered_slots += 1
        self.slot += 1

    def _handle_calls(self, called: np.ndarray, slot_cost: np.ndarray) -> None:
        rings = self._distance(self._pos[called])
        if self._ring_hits is not None:
            np.add.at(self._ring_hits, rings, 1)
        cycles = self._ring_to_cycle[rings]
        polled = self._cumulative_polled[cycles]
        self._calls[called] += 1
        self._polled_cells[called] += polled
        np.add.at(self._delay_counts, (np.nonzero(called)[0], cycles), 1)
        slot_cost[called] += self.costs.poll_cost * polled
        # The network pinpointed these terminals: their cells become the
        # new centers, i.e. the relative position resets to the origin.
        self._pos[called] = 0

    def _handle_moves(self, moved: np.ndarray, slot_cost: np.ndarray) -> None:
        steps = self._dirs[
            self.rng.integers(self._dirs.shape[0], size=int(moved.sum()))
        ]
        self._pos[moved] += steps
        self._moves[moved] += 1
        # Threshold test on the movers only; crossing the residing-area
        # boundary triggers an update and re-centers the terminal.
        updating = moved.copy()
        updating[moved] = self._distance(self._pos[moved]) > self.threshold
        if updating.any():
            self._updates[updating] += 1
            slot_cost[updating] += self.costs.update_cost
            self._pos[updating] = 0

    # -- counter-RNG backend (NumPy port of the jit kernel) ---------------

    def _step_counter(self) -> None:
        """One slot on the counter RNG -- bit-identical to the jit kernel.

        Same hashes, same within-slot order (calls then moves), and the
        same per-terminal float arithmetic as
        ``kernels.homogeneous_step``, so every meter -- including the
        float cost accumulators -- matches the compiled execution bit
        for bit.
        """
        c = self.mobility.call_probability
        q = self.mobility.move_probability
        u = counter_uniforms(self._idx_keys, self._seed, STREAM_EVENT, self.slot)
        if self.event_mode == "exclusive":
            called = u < c
            moved = (~called) & (u < c + q)
        else:
            moved = u < q
            called = (
                counter_uniforms(self._idx_keys, self._seed, STREAM_CALL, self.slot)
                < c
            )
        slot_cost = np.zeros(self.terminals, dtype=np.float64)
        if called.any():
            self._handle_calls(called, slot_cost)
        if moved.any():
            self._handle_moves_counter(moved, slot_cost)
        self._cost_sum += slot_cost
        self._cost_sq_sum += slot_cost * slot_cost
        self._metered_slots += 1
        self.slot += 1

    def _handle_moves_counter(
        self, moved: np.ndarray, slot_cost: np.ndarray
    ) -> None:
        movers = np.nonzero(moved)[0]
        h = mix64(
            self._idx_keys[movers]
            ^ slot_key(self._seed, STREAM_DIRECTION, self.slot)
        )
        unit = (h >> np.uint64(11)).astype(np.float64) * 2.0**-53
        directions = (unit * float(self._dirs.shape[0])).astype(np.int64)
        self._pos[movers] += self._dirs[directions]
        self._moves[movers] += 1
        updating = movers[self._distance(self._pos[movers]) > self.threshold]
        if updating.size:
            self._updates[updating] += 1
            slot_cost[updating] += self.costs.update_cost
            self._pos[updating] = 0

    # -- timed (CTRW) mobility on the counter RNG -------------------------

    def _step_ctrw(self) -> None:
        """One slot of residence-clock mobility.

        Timed slot semantics (the same as SimulationEngine's timed
        path): the call is the only probabilistic per-slot event,
        processed before the move; every terminal's residence clock
        then ticks, and expired clocks move.  ``event_mode`` plays no
        role -- a CTRW has no per-slot move probability to compete
        with the call draw.
        """
        c = self.mobility.call_probability
        called = (
            counter_uniforms(self._idx_keys, self._seed, STREAM_CALL, self.slot)
            < c
        )
        slot_cost = np.zeros(self.terminals, dtype=np.float64)
        if called.any():
            self._handle_calls(called, slot_cost)
        self._residence -= 1
        moved = self._residence <= 0
        if moved.any():
            self._handle_moves_ctrw(moved, slot_cost)
        self._cost_sum += slot_cost
        self._cost_sq_sum += slot_cost * slot_cost
        self._metered_slots += 1
        self.slot += 1

    def _handle_moves_ctrw(self, moved: np.ndarray, slot_cost: np.ndarray) -> None:
        movers = np.nonzero(moved)[0]
        spec = self.walk_spec
        keys = self._idx_keys[movers]
        u_dir = counter_uniforms(keys, self._seed, STREAM_DIRECTION, self.slot)
        directions = drifted_directions(
            u_dir,
            self._dirs.shape[0],
            spec.drift,
            spec.drift_direction,
            spec.persistence,
            self._last_dir[movers],
        )
        self._last_dir[movers] = directions
        self._pos[movers] += self._dirs[directions]
        self._moves[movers] += 1
        # Re-arm the movers' clocks for their new cells.
        self._residence[movers] = spec.residence.from_uniforms(
            counter_uniforms(keys, self._seed, STREAM_RESIDENCE_BRANCH, self.slot),
            counter_uniforms(keys, self._seed, STREAM_RESIDENCE, self.slot),
        )
        updating = movers[self._distance(self._pos[movers]) > self.threshold]
        if updating.size:
            self._updates[updating] += 1
            slot_cost[updating] += self.costs.update_cost
            self._pos[updating] = 0


def replay_trace_meters(
    trace,
    threshold: int,
    costs: CostParams,
    max_delay=1,
    plan: Optional[PagingPlan] = None,
) -> MeterSnapshot:
    """Replay a recorded :class:`~repro.mobility.traces.Trace` vectorized.

    Drives the distance strategy over the trace's recorded positions
    and call slots using the vectorized engine's relative-coordinate
    bookkeeping (same lattice kernel, same paging tables, same
    within-slot order: call before move).  Returns one
    :class:`MeterSnapshot` with CostMeter accounting -- the regression
    contract is that this snapshot matches a replay of the same trace
    through :class:`~repro.simulation.engine.SimulationEngine` meter
    for meter (see :func:`repro.mobility.traces.replay_trace`).
    """
    threshold = validate_threshold(threshold)
    if plan is not None and plan.threshold != threshold:
        raise ParameterError(
            f"plan is for threshold {plan.threshold}, replay uses {threshold}"
        )
    plan = plan if plan is not None else sdf_partition(threshold, max_delay)
    dirs, distance = _lattice_kernel(trace.topology)
    ring_to_cycle = np.empty(threshold + 1, dtype=np.int64)
    for cycle, group in enumerate(plan.subareas):
        for ring in group:
            ring_to_cycle[ring] = cycle
    cumulative_polled = np.asarray(
        plan.cumulative_polled(trace.topology), dtype=np.int64
    )

    def coords(cell) -> np.ndarray:
        raw = cell if isinstance(cell, tuple) else (cell,)
        return np.asarray(raw, dtype=np.int64)

    pos = np.zeros((1, dirs.shape[1]), dtype=np.int64)
    prev = coords(trace.start)
    moves = updates = calls = polled_cells = 0
    cost_sum = cost_sq_sum = 0.0
    delay_counts = np.zeros(plan.delay_bound, dtype=np.int64)
    U, V = costs.update_cost, costs.poll_cost
    for cell, call in trace.steps:
        slot_cost = 0.0
        if call:
            ring = int(distance(pos)[0])
            if ring > threshold:
                raise ParameterError(
                    f"trace is inconsistent with threshold {threshold}: a call "
                    f"found the terminal at ring {ring}"
                )
            cycle = int(ring_to_cycle[ring])
            polled = int(cumulative_polled[cycle])
            calls += 1
            polled_cells += polled
            delay_counts[cycle] += 1
            slot_cost += V * polled
            pos[:] = 0
        here = coords(cell)
        if not np.array_equal(here, prev):
            pos[0] += here - prev
            moves += 1
            if int(distance(pos)[0]) > threshold:
                updates += 1
                slot_cost += U
                pos[:] = 0
        prev = here
        cost_sum += slot_cost
        cost_sq_sum += slot_cost * slot_cost
    slots = len(trace.steps)
    mean = cost_sum / slots if slots else 0.0
    if slots >= 2:
        var = max(cost_sq_sum / slots - mean * mean, 0.0)
        half = _Z95 * math.sqrt(var / slots)
    else:
        half = math.inf
    if calls:
        delay = float(
            np.arange(1, delay_counts.size + 1, dtype=np.float64) @ delay_counts
        ) / calls
    else:
        delay = 0.0
    return MeterSnapshot(
        slots=slots,
        moves=moves,
        updates=updates,
        calls=calls,
        polled_cells=polled_cells,
        update_cost=updates * U,
        paging_cost=polled_cells * V,
        mean_total_cost=float(mean),
        total_cost_half_width_95=float(half),
        mean_paging_delay=delay,
        delay_histogram={
            cycle + 1: int(count)
            for cycle, count in enumerate(delay_counts)
            if count
        },
    )


def throughput_report(
    topology: CellTopology,
    threshold: int,
    mobility: MobilityParams,
    costs: CostParams,
    max_delay=1,
    engine_slots: int = 20_000,
    vector_slots: int = 20_000,
    terminals: int = 1024,
    seed: int = 0,
    backend: str = "numpy",
) -> dict:
    """Measure slots/sec of the per-cell engine vs the vectorized one.

    Both engines run the distance strategy at the same ``(d, m, q, c)``
    point; throughput counts *terminal-slots* per wall-clock second, so
    the numbers are directly comparable.  Returns a JSON-ready dict
    (consumed by ``benchmarks/bench_throughput.py`` and the CLI's
    ``speed`` subcommand).
    """
    from ..strategies.distance import DistanceStrategy  # local: avoid cycle
    from .engine import SimulationEngine

    engine = SimulationEngine(
        topology=topology,
        strategy=DistanceStrategy(threshold, max_delay=max_delay),
        mobility=mobility,
        costs=costs,
        seed=seed,
    )
    tic = time.perf_counter()
    engine.run(engine_slots)
    engine_seconds = time.perf_counter() - tic

    vectorized = VectorizedDistanceEngine(
        topology=topology,
        threshold=threshold,
        mobility=mobility,
        costs=costs,
        max_delay=max_delay,
        terminals=terminals,
        seed=seed,
        backend=backend,
    )
    tic = time.perf_counter()
    vectorized.run(vector_slots)
    vector_seconds = time.perf_counter() - tic

    engine_rate = engine_slots / engine_seconds if engine_seconds else math.inf
    vector_rate = (
        vector_slots * terminals / vector_seconds if vector_seconds else math.inf
    )
    return {
        "config": {
            "topology": repr(topology),
            "threshold": threshold,
            "max_delay": None if max_delay == math.inf else max_delay,
            "q": mobility.move_probability,
            "c": mobility.call_probability,
            "update_cost": costs.update_cost,
            "poll_cost": costs.poll_cost,
            "seed": seed,
            "backend": backend,
        },
        "engine": {
            "terminal_slots": engine_slots,
            "seconds": engine_seconds,
            "slots_per_sec": engine_rate,
        },
        "vectorized": {
            "terminals": terminals,
            "slots": vector_slots,
            "terminal_slots": vector_slots * terminals,
            "seconds": vector_seconds,
            "slots_per_sec": vector_rate,
            "backend": vectorized.backend_resolved,
        },
        "speedup": vector_rate / engine_rate if engine_rate else math.inf,
    }


def compare_backends_report(
    topology: CellTopology,
    threshold: int,
    mobility: MobilityParams,
    costs: CostParams,
    max_delay=1,
    slots: int = 5_000,
    terminals: int = 2_048,
    seed: int = 0,
) -> dict:
    """Time every execution backend on one configuration.

    Rows: ``numpy`` (legacy sequential-PCG64 step), ``numpy-counter``
    (the counter-RNG kernel forced onto its NumPy port), and -- when
    numba is importable -- ``numba`` (the jit-compiled kernel).  The
    ``numpy-counter`` and ``numba`` rows report the same mean cost bit
    for bit; that agreement is part of the output so speedup claims and
    the identity contract are reproducible with one command
    (``repro-lm speed --compare-backends``).
    """
    rows = [("numpy", "numpy", False), ("numpy-counter", "auto", True)]
    if numba_available():
        rows.append(("numba", "numba", False))
    out_rows = []
    for name, requested, force in rows:
        def _build():
            return VectorizedDistanceEngine(
                topology=topology,
                threshold=threshold,
                mobility=mobility,
                costs=costs,
                max_delay=max_delay,
                terminals=terminals,
                seed=seed,
                backend=requested,
            )

        if force:
            with use_numpy_fallback():
                engine = _build()
        else:
            engine = _build()
        if engine.backend_resolved == "numba":  # pragma: no cover - numba
            # Trigger compilation outside the timed window, on a
            # throwaway engine so the timed one still starts at slot 0
            # (keeping its meters bit-comparable to the numpy-counter
            # row).
            _build().run(1)
        tic = time.perf_counter()
        result = engine.run(slots)
        seconds = time.perf_counter() - tic
        terminal_slots = slots * terminals
        out_rows.append(
            {
                "name": name,
                "requested": requested,
                "resolved": engine.backend_resolved,
                "terminal_slots": terminal_slots,
                "seconds": seconds,
                "slots_per_sec": terminal_slots / seconds if seconds else math.inf,
                "mean_total_cost": result.mean_total_cost,
            }
        )
    return {
        "config": {
            "topology": repr(topology),
            "threshold": threshold,
            "max_delay": None if max_delay == math.inf else max_delay,
            "q": mobility.move_probability,
            "c": mobility.call_probability,
            "update_cost": costs.update_cost,
            "poll_cost": costs.poll_cost,
            "seed": seed,
            "slots": slots,
            "terminals": terminals,
        },
        "numba_available": numba_available(),
        "backends": out_rows,
    }
