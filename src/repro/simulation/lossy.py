"""Failure injection: lost location updates and recovery paging.

The paper assumes every update message reaches the network.  Real
signaling channels drop messages, and a lost update is the nastiest
failure this protocol has: the *terminal* resets its center cell (it
transmitted; it doesn't know the message died), the *register* keeps
the stale one, and the two views diverge -- the terminal can now
legally wander outside what the network believes is its residing area.
The next call's paging then misses entirely, and recovery paging
(expanding ring search) restores correctness at the price of extra
polled cells and a busted delay bound.

This scenario is now one configuration of the composable fault
subsystem: :class:`LossyUpdateEngine` is a thin compatibility shim over
:class:`~repro.faults.ResilientEngine` with a single
:class:`~repro.faults.UpdateLoss` fault and the paper's fire-and-forget
signaling (no acks, no retries, no re-page).  New code should use
:class:`~repro.faults.ResilientEngine` directly -- it composes update
loss with page loss, base-station outages, and register degradation,
and adds acknowledged updates with retry/backoff.

The failure-injection bench measures cost and delay degradation as a
function of the loss probability; the tests assert the invariant that
matters: *every* call is eventually answered, at any loss rate --
including total loss (``loss_probability = 1.0``), where the register
is only ever refreshed by located calls.
"""

from __future__ import annotations

from typing import Optional

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError
from ..faults.models import UpdateLoss
from ..faults.resilient import ResilientEngine
from ..faults.signaling import SignalingPolicy
from ..geometry.topology import Cell, CellTopology
from ..strategies.distance import DistanceStrategy

__all__ = ["LossyUpdateEngine"]


class LossyUpdateEngine(ResilientEngine):
    """A :class:`SimulationEngine` whose update messages can be lost.

    Parameters (beyond the base engine's)
    -------------------------------------
    loss_probability:
        Probability that a transmitted update never reaches the
        register, in the closed interval ``[0, 1]``.  The terminal is
        always charged ``U`` (it did transmit).  ``1.0`` models a dead
        uplink: every call is then located by recovery paging alone.
    """

    def __init__(
        self,
        topology: CellTopology,
        strategy: DistanceStrategy,
        mobility: MobilityParams,
        costs: CostParams,
        loss_probability: float,
        seed: Optional[int] = None,
        start: Optional[Cell] = None,
        event_mode: str = "exclusive",
    ) -> None:
        if not isinstance(strategy, DistanceStrategy):
            raise ParameterError(
                "LossyUpdateEngine models the paper's distance scheme; "
                f"got {strategy!r}"
            )
        if not 0.0 <= loss_probability <= 1.0:
            raise ParameterError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        super().__init__(
            topology=topology,
            strategy=strategy,
            mobility=mobility,
            costs=costs,
            faults=[UpdateLoss(loss_probability)],
            signaling=SignalingPolicy.fire_and_forget(),
            seed=seed,
            start=start,
            event_mode=event_mode,
        )
        self.loss_probability = loss_probability
