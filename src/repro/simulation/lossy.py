"""Failure injection: lost location updates and recovery paging.

The paper assumes every update message reaches the network.  Real
signaling channels drop messages, and a lost update is the nastiest
failure this protocol has: the *terminal* resets its center cell (it
transmitted; it doesn't know the message died), the *register* keeps
the stale one, and the two views diverge -- the terminal can now
legally wander outside what the network believes is its residing area.
The next call's paging then misses entirely.

:class:`LossyUpdateEngine` models exactly this:

* the terminal runs an unmodified :class:`DistanceStrategy` (its own
  view: center resets on every *transmitted* update);
* the engine separately tracks the register's view, updated only by
  updates that survive the loss coin-flip and by located calls;
* paging runs the SDF plan around the *register's* center and, when it
  exhausts the plan without an answer, falls back to **recovery
  paging**: polling outward ring by ring beyond the residing area
  until the terminal answers (delay bound forfeited -- correctness
  over latency, as a real network must choose);
* after any located call the two views re-synchronize.

The failure-injection bench measures cost and delay degradation as a
function of the loss probability; the tests assert the invariant that
matters: *every* call is eventually answered, at any loss rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.parameters import CostParams, MobilityParams
from ..exceptions import ParameterError, SimulationError
from ..geometry.topology import Cell, CellTopology
from ..strategies.distance import DistanceStrategy
from .engine import SimulationEngine
from .events import PagingEvent, UpdateEvent

__all__ = ["LossyUpdateEngine"]

#: Hard cap on recovery expansion, far beyond anything reachable: the
#: terminal drifts at most one ring per slot, so hitting this means a
#: bookkeeping bug, not an unlucky walk.
_MAX_RECOVERY_RADIUS = 10_000


class LossyUpdateEngine(SimulationEngine):
    """A :class:`SimulationEngine` whose update messages can be lost.

    Parameters (beyond the base engine's)
    -------------------------------------
    loss_probability:
        Probability that a transmitted update never reaches the
        register, in ``[0, 1)``.  The terminal is always charged ``U``
        (it did transmit).
    """

    def __init__(
        self,
        topology: CellTopology,
        strategy: DistanceStrategy,
        mobility: MobilityParams,
        costs: CostParams,
        loss_probability: float,
        seed: Optional[int] = None,
        start: Optional[Cell] = None,
        event_mode: str = "exclusive",
    ) -> None:
        if not isinstance(strategy, DistanceStrategy):
            raise ParameterError(
                "LossyUpdateEngine models the paper's distance scheme; "
                f"got {strategy!r}"
            )
        if not 0.0 <= loss_probability < 1.0:
            raise ParameterError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        super().__init__(
            topology=topology,
            strategy=strategy,
            mobility=mobility,
            costs=costs,
            seed=seed,
            start=start,
            event_mode=event_mode,
        )
        self.loss_probability = loss_probability
        #: The register's belief; diverges from the terminal's center
        #: after a lost update.
        self.network_center: Cell = self.walk.position
        self.lost_updates = 0
        self.recovery_pagings = 0
        self.recovery_cells = 0

    # -- update path -------------------------------------------------------

    def _perform_update(self, timer: bool) -> None:
        position = self.walk.position
        self.meter.charge_update()  # the terminal transmitted either way
        self.strategy.on_location_known(position)  # terminal view resets
        delivered = self.rng.random() >= self.loss_probability
        if delivered:
            self.network_center = position
        else:
            self.lost_updates += 1
        if self.log is not None:
            self.log.append(
                UpdateEvent(slot=self.slot, cell=position, timer_triggered=timer)
            )

    # -- paging path ---------------------------------------------------------

    def _handle_call(self) -> None:
        position = self.walk.position
        topo = self.topology
        plan = self.strategy.plan
        polled = 0
        cycles = 0
        found = False
        for group in plan.subareas:
            cycles += 1
            for ring in group:
                polled += topo.ring_size(ring)
            if topo.distance(self.network_center, position) in {
                ring for ring in group
            }:
                found = True
                break
        if not found:
            # Recovery: expand ring by ring beyond the residing area.
            self.recovery_pagings += 1
            radius = self.strategy.threshold + 1
            actual = topo.distance(self.network_center, position)
            while radius <= _MAX_RECOVERY_RADIUS:
                cycles += 1
                cells = topo.ring_size(radius)
                polled += cells
                self.recovery_cells += cells
                if radius == actual:
                    found = True
                    break
                radius += 1
            if not found:  # pragma: no cover - _MAX_RECOVERY_RADIUS guard
                raise SimulationError(
                    f"recovery paging failed: terminal {actual} rings out"
                )
        self.meter.charge_paging(cells_polled=polled, cycles=cycles)
        self.network_center = position  # the call re-synchronizes views
        self.strategy.on_location_known(position)
        if self.log is not None:
            self.log.append(
                PagingEvent(
                    slot=self.slot, cell=position, cells_polled=polled, cycles=cycles
                )
            )
