"""CTRW mobility: general residence times plus directional drift.

:class:`CTRWWalk` generalizes the paper's walk along two axes at once
(Zhao & Liew, arXiv 0808.1062):

* **when** the terminal moves is governed by a per-cell residence time
  drawn from a pluggable :class:`~repro.mobility.residence.
  ResidenceDistribution` -- a countdown clock replaces the per-slot
  Bernoulli move draw;
* **where** it moves composes the direction memory of
  :class:`~repro.mobility.persistent.PersistentWalk` with a fixed
  directional *drift*: with probability ``drift`` the walker takes its
  preferred lattice direction, with probability ``persistence`` it
  repeats its previous direction, and otherwise it draws uniformly.

Slot semantics for timed walkers
--------------------------------

A walker with a residence clock exposes ``timed = True`` and
:meth:`CTRWWalk.move_due`.  The simulation engines then run the
*independent-within-slot* semantics: a call arrives with probability
``c`` (processed first, so paging sees the pre-move position) and the
residence clock ticks **every** slot, moving the terminal when it
expires.  A call never freezes motion -- there is no competing-event
draw, because a CTRW has no per-slot move probability to compete with.
Consequently a CTRW with :class:`~repro.mobility.residence.
GeometricResidence` at rate ``q`` is distributionally identical to the
paper's uniform walk stepped in ``event_mode="independent"`` -- the
degeneracy the conformance oracle checks.

:class:`CTRWSpec` is the serializable description both engines accept:
:class:`~repro.simulation.engine.SimulationEngine` via
``walker_factory=spec.walker_factory()`` and
:class:`~repro.simulation.vectorized.VectorizedDistanceEngine` via its
``walk=spec`` argument (which runs the stateless counter-RNG path; see
:mod:`repro.simulation.kernels`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology
from .persistent import PersistentWalk
from .residence import (
    DeterministicResidence,
    GeometricResidence,
    HyperexponentialResidence,
    ResidenceDistribution,
    TruncatedParetoResidence,
    residence_from_spec,
)

__all__ = [
    "CTRWSpec",
    "CTRWWalk",
    "MOBILITY_PRESETS",
    "mobility_preset",
]


class CTRWWalk(PersistentWalk):
    """Random walk with a residence clock and optional drift.

    Parameters
    ----------
    topology:
        Cell geometry to walk on.
    residence:
        Distribution of whole slots spent in each cell.
    rng:
        Seeded generator (a fresh default one if omitted).
    start:
        Initial cell; defaults to the topology origin.
    drift:
        Probability of taking the preferred ``drift_direction`` on a
        move, in ``[0, 1)``.
    persistence:
        Probability of repeating the previous direction (evaluated
        after the drift draw misses), in ``[0, 1)``; ``drift +
        persistence`` must stay below 1 so uniform exploration keeps
        positive mass.
    drift_direction:
        Index into the topology's neighbor list naming the preferred
        direction (lattice neighbor order is position-independent).
    """

    #: Engines route timed walkers through the residence-clock slot
    #: path (see module docstring) instead of the Bernoulli move draw.
    timed = True

    def __init__(
        self,
        topology: CellTopology,
        residence: ResidenceDistribution,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Cell] = None,
        drift: float = 0.0,
        persistence: float = 0.0,
        drift_direction: int = 0,
    ) -> None:
        if not isinstance(residence, ResidenceDistribution):
            raise ParameterError(
                f"residence must be a ResidenceDistribution, got {residence!r}"
            )
        if not 0.0 <= drift < 1.0:
            raise ParameterError(f"drift must be in [0, 1), got {drift}")
        if drift + persistence >= 1.0:
            raise ParameterError(
                f"drift + persistence must be < 1, got {drift} + {persistence}"
            )
        # The nominal move_probability is the long-run move rate; the
        # residence clock, not this number, decides when moves happen.
        super().__init__(
            topology,
            min(1.0, 1.0 / residence.mean()),
            persistence,
            rng=rng,
            start=start,
        )
        degree = len(topology.neighbors(self.position))
        if not 0 <= int(drift_direction) < degree:
            raise ParameterError(
                f"drift_direction must index a neighbor (0..{degree - 1}), "
                f"got {drift_direction}"
            )
        self.residence = residence
        self.drift = float(drift)
        self.drift_direction = int(drift_direction)
        self._remaining = residence.sample(self.rng)

    def move_due(self) -> bool:
        """Tick the residence clock one slot; True when a move is due.

        On expiry the clock is re-armed with a fresh residence draw for
        the next cell.  Engines call this exactly once per slot.
        """
        self._remaining -= 1
        if self._remaining > 0:
            return False
        self._remaining = self.residence.sample(self.rng)
        return True

    def move(self) -> Cell:
        """Move composing drift, persistence, and uniform exploration."""
        options = self.topology.neighbors(self.position)
        u = self.rng.random()
        if u < self.drift:
            index = self.drift_direction
        elif u < self.drift + self.persistence and self._last_direction is not None:
            index = self._last_direction
        else:
            index = int(self.rng.integers(len(options)))
        self._last_direction = index
        self.position = options[index]
        self.moves += 1
        return self.position

    def step(self) -> Cell:
        """Advance one slot: tick the clock, move if it expired."""
        self.slots += 1
        if self.move_due():
            return self.move()
        return self.position

    def __repr__(self) -> str:
        return (
            f"CTRWWalk(topology={self.topology!r}, residence={self.residence!r}, "
            f"drift={self.drift}, persistence={self.persistence}, "
            f"position={self.position!r})"
        )


@dataclass(frozen=True)
class CTRWSpec:
    """Serializable description of a CTRW mobility model.

    One spec drives both engines (see module docstring), traces, and
    the conformance tier; it is picklable, so pooled
    :func:`~repro.simulation.runner.run_replicated` campaigns can ship
    it to worker processes.
    """

    residence: ResidenceDistribution
    drift: float = 0.0
    persistence: float = 0.0
    drift_direction: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.residence, ResidenceDistribution):
            raise ParameterError(
                f"residence must be a ResidenceDistribution, got {self.residence!r}"
            )
        if not 0.0 <= self.drift < 1.0:
            raise ParameterError(f"drift must be in [0, 1), got {self.drift}")
        if not 0.0 <= self.persistence < 1.0:
            raise ParameterError(
                f"persistence must be in [0, 1), got {self.persistence}"
            )
        if self.drift + self.persistence >= 1.0:
            raise ParameterError(
                "drift + persistence must be < 1, got "
                f"{self.drift} + {self.persistence}"
            )
        if self.drift_direction < 0:
            raise ParameterError(
                f"drift_direction must be >= 0, got {self.drift_direction}"
            )

    def effective_move_probability(self) -> float:
        """Long-run moves per slot: ``1 / E[residence]``.

        The rate an analytic chain should use when standing in for this
        mobility model (exact for geometric residence, a mean-matched
        baseline otherwise -- whose error
        :func:`repro.analysis.approximation.approximation_report`
        measures).
        """
        return min(1.0, 1.0 / self.residence.mean())

    def build_walker(
        self,
        topology: CellTopology,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Cell] = None,
    ) -> CTRWWalk:
        """Instantiate the per-cell walker this spec describes."""
        return CTRWWalk(
            topology,
            self.residence,
            rng=rng,
            start=start,
            drift=self.drift,
            persistence=self.persistence,
            drift_direction=self.drift_direction,
        )

    def walker_factory(self) -> "_SpecWalkerFactory":
        """A picklable ``walker_factory`` for :class:`SimulationEngine`."""
        return _SpecWalkerFactory(self)

    # -- serialization ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "residence": self.residence.spec(),
            "drift": self.drift,
            "persistence": self.persistence,
            "drift_direction": self.drift_direction,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CTRWSpec":
        if not isinstance(payload, dict) or "residence" not in payload:
            raise ParameterError(
                f"CTRW spec payload must be a dict with 'residence': {payload!r}"
            )
        return cls(
            residence=residence_from_spec(payload["residence"]),
            drift=float(payload.get("drift", 0.0)),
            persistence=float(payload.get("persistence", 0.0)),
            drift_direction=int(payload.get("drift_direction", 0)),
        )


@dataclass(frozen=True)
class _SpecWalkerFactory:
    """Module-level (picklable) walker factory closing over a spec.

    Matches the ``walker_factory(topology, q, rng, start)`` signature of
    :class:`~repro.simulation.engine.SimulationEngine`; the engine's
    ``q`` is ignored -- the spec's residence distribution owns the move
    timing.
    """

    spec: CTRWSpec

    def __call__(
        self,
        topology: CellTopology,
        move_probability: float,
        rng: np.random.Generator,
        start: Optional[Cell],
    ) -> CTRWWalk:
        return self.spec.build_walker(topology, rng=rng, start=start)


#: Mobility presets accepted by ``repro-lm simulate --mobility`` and the
#: approximation report; "uniform" is the paper's walk (no CTRW spec).
MOBILITY_PRESETS: Tuple[str, ...] = (
    "uniform",
    "ctrw-exp",
    "ctrw-fixed",
    "ctrw-hyper",
    "ctrw-pareto",
    "ctrw-drift",
)


def mobility_preset(
    name: str,
    q: float,
    drift: float = 0.4,
    cv2: float = 8.0,
) -> Optional[CTRWSpec]:
    """Build the named mobility model around a nominal move rate ``q``.

    Returns None for ``"uniform"`` (the engines' built-in walk).  The
    CTRW presets match the paper's mean move rate where the family
    allows it exactly: ``ctrw-exp`` and ``ctrw-drift`` use geometric
    residence at rate ``q``; ``ctrw-fixed`` rounds ``1/q`` to whole
    slots; ``ctrw-hyper`` fits a two-phase hyperexponential of mean
    ``1/q`` and squared coefficient of variation ``cv2``; the
    heavy-tailed ``ctrw-pareto`` is *not* rate-matched (its mean is a
    property of the tail) -- which is exactly why the simulation, not
    the chain, is the oracle for it.
    """
    if not 0.0 < q <= 1.0:
        raise ParameterError(f"q must be in (0, 1], got {q}")
    if name == "uniform":
        return None
    if name == "ctrw-exp":
        return CTRWSpec(GeometricResidence(q))
    if name == "ctrw-fixed":
        return CTRWSpec(DeterministicResidence(max(1, round(1.0 / q))))
    if name == "ctrw-hyper":
        return CTRWSpec(HyperexponentialResidence.fit(max(2.0, 1.0 / q), cv2))
    if name == "ctrw-pareto":
        return CTRWSpec(
            TruncatedParetoResidence(
                alpha=1.1, minimum=1.0, maximum=max(10.0, round(50.0 / q))
            )
        )
    if name == "ctrw-drift":
        return CTRWSpec(GeometricResidence(q), drift=drift)
    raise ParameterError(
        f"unknown mobility preset {name!r}; expected one of {MOBILITY_PRESETS}"
    )
