"""Terminal mobility and traffic processes (paper Section 2.1).

Random-walk movement, Bernoulli (and bursty) call arrivals, trace
recording/replay, and the fluid-flow crossing-rate baseline of
reference [8].
"""

from .arrivals import BatchedArrivals, BernoulliArrivals
from .fluid import FluidFlowModel
from .persistent import PersistentWalk
from .traces import Trace, TraceStep, generate_trace
from .walk import RandomWalk

__all__ = [
    "BatchedArrivals",
    "BernoulliArrivals",
    "FluidFlowModel",
    "PersistentWalk",
    "RandomWalk",
    "Trace",
    "TraceStep",
    "generate_trace",
]
