"""Terminal mobility and traffic processes (paper Section 2.1).

Random-walk movement, Bernoulli (and bursty) call arrivals, trace
recording/replay, the fluid-flow crossing-rate baseline of reference
[8], and the general-residence-time CTRW models (geometric,
hyperexponential, truncated-Pareto, deterministic residence; optional
directional drift) that the simulation-as-oracle conformance tier is
built on.
"""

from .arrivals import BatchedArrivals, BernoulliArrivals
from .ctrw import CTRWSpec, CTRWWalk, MOBILITY_PRESETS, mobility_preset
from .fluid import FluidFlowModel
from .persistent import PersistentWalk
from .residence import (
    DeterministicResidence,
    GeometricResidence,
    HyperexponentialResidence,
    ResidenceDistribution,
    TruncatedParetoResidence,
    residence_from_spec,
)
from .traces import Trace, TraceStep, generate_trace, replay_trace
from .walk import RandomWalk

__all__ = [
    "BatchedArrivals",
    "BernoulliArrivals",
    "CTRWSpec",
    "CTRWWalk",
    "DeterministicResidence",
    "FluidFlowModel",
    "GeometricResidence",
    "HyperexponentialResidence",
    "MOBILITY_PRESETS",
    "PersistentWalk",
    "RandomWalk",
    "ResidenceDistribution",
    "Trace",
    "TraceStep",
    "TruncatedParetoResidence",
    "generate_trace",
    "mobility_preset",
    "replay_trace",
    "residence_from_spec",
]
