"""Direction-persistent mobility (a stress test for the paper's model).

The paper's random walk redraws the direction uniformly at every move
-- the right model for "frequent stop-and-go as well as direction
changes" of pedestrians.  Vehicles do the opposite: they keep heading
the same way for many cells.  :class:`PersistentWalk` interpolates
between the two with one parameter:

``persistence = 0``
    exactly the paper's walk (uniform direction each move);
``persistence -> 1``
    nearly straight-line motion (the fluid-flow regime of [8]).

At each move the walker repeats its previous direction with probability
``persistence`` and redraws uniformly otherwise.  The *move rate* ``q``
is untouched, so the analytical chain sees identical parameters -- any
cost deviation measured by the robustness bench is purely the model's
direction-memory blindness.  Persistence makes net displacement grow
faster (the walk's effective diffusion constant scales like
``(1 + eps) / (1 - eps)``), so the distance-based scheme updates more
often than the chain predicts: the model *underestimates* cost for
vehicle-like users, quantified in ``bench_persistence.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology
from .walk import RandomWalk

__all__ = ["PersistentWalk"]


class PersistentWalk(RandomWalk):
    """Random walk with direction memory.

    Drop-in replacement for :class:`RandomWalk` (the simulation engine
    accepts either via its ``walker_factory`` hook).

    Parameters
    ----------
    persistence:
        Probability of repeating the previous move's direction,
        in ``[0, 1)``.  0 reduces to the parent class behavior.
    """

    def __init__(
        self,
        topology: CellTopology,
        move_probability: float,
        persistence: float,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Cell] = None,
    ) -> None:
        if not 0.0 <= persistence < 1.0:
            raise ParameterError(f"persistence must be in [0, 1), got {persistence}")
        super().__init__(topology, move_probability, rng=rng, start=start)
        self.persistence = persistence
        self._last_direction: Optional[int] = None

    def move(self) -> Cell:
        """Move, repeating the previous direction with the set probability."""
        options = self.topology.neighbors(self.position)
        if (
            self._last_direction is not None
            and self.rng.random() < self.persistence
        ):
            index = self._last_direction
        else:
            index = int(self.rng.integers(len(options)))
        self._last_direction = index
        self.position = options[index]
        self.moves += 1
        return self.position

    def __repr__(self) -> str:
        return (
            f"PersistentWalk(topology={self.topology!r}, "
            f"q={self.move_probability}, persistence={self.persistence}, "
            f"position={self.position!r})"
        )
