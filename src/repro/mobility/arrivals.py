"""Call-arrival processes (paper Section 2.1).

The paper assumes incoming calls form a Bernoulli process: during each
discrete slot a call arrives with probability ``c``, independently, so
interarrival times are geometrically distributed with mean ``1/c``.

:class:`BernoulliArrivals` is that process.  :class:`BatchedArrivals`
is a burstier alternative (Markov-modulated on/off) used by the
robustness examples to probe how sensitive the optimal threshold is to
the geometric-interarrival assumption.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..exceptions import ParameterError

__all__ = ["BernoulliArrivals", "BatchedArrivals"]


class BernoulliArrivals:
    """Bernoulli(``c``) call arrivals, one draw per slot."""

    def __init__(
        self, call_probability: float, rng: Optional[np.random.Generator] = None
    ) -> None:
        if not 0.0 <= call_probability < 1.0:
            raise ParameterError(
                f"call_probability must be in [0, 1), got {call_probability}"
            )
        self.call_probability = call_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.arrivals = 0
        self.slots = 0

    def step(self) -> bool:
        """Return True if a call arrives in this slot."""
        self.slots += 1
        hit = self.rng.random() < self.call_probability
        if hit:
            self.arrivals += 1
        return hit

    def interarrival_times(self, count: int) -> Iterator[int]:
        """Yield ``count`` successive interarrival times (in slots).

        Each is geometric with mean ``1/c``; raises if ``c`` is zero
        (no calls ever arrive).
        """
        if self.call_probability == 0.0:
            raise ParameterError("interarrival times undefined for c = 0")
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        for _ in range(count):
            gap = 1
            while not self.step():
                gap += 1
            yield gap

    @property
    def empirical_rate(self) -> float:
        """Observed arrivals per slot so far (0 before any slot)."""
        if self.slots == 0:
            return 0.0
        return self.arrivals / self.slots


class BatchedArrivals:
    """Markov-modulated Bernoulli arrivals (bursty baseline).

    The process alternates between an *idle* state (no arrivals) and a
    *busy* state where calls arrive with probability ``busy_rate`` per
    slot.  Transition probabilities are chosen so the long-run arrival
    rate equals ``call_probability``, making results directly
    comparable with :class:`BernoulliArrivals` at the same mean load.

    Parameters
    ----------
    call_probability:
        Target long-run arrivals per slot, in ``(0, 1)``.
    burstiness:
        Ratio ``busy_rate / call_probability`` (> 1); higher means the
        same traffic squeezed into rarer, denser busy periods.
    mean_busy_slots:
        Expected length of a busy period.
    """

    def __init__(
        self,
        call_probability: float,
        burstiness: float = 5.0,
        mean_busy_slots: float = 50.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < call_probability < 1.0:
            raise ParameterError(
                f"call_probability must be in (0, 1), got {call_probability}"
            )
        if burstiness <= 1.0:
            raise ParameterError(f"burstiness must be > 1, got {burstiness}")
        if mean_busy_slots < 1.0:
            raise ParameterError(
                f"mean_busy_slots must be >= 1, got {mean_busy_slots}"
            )
        busy_rate = call_probability * burstiness
        if busy_rate >= 1.0:
            raise ParameterError(
                f"busy-state rate c*burstiness must be < 1, got {busy_rate}"
            )
        self.call_probability = call_probability
        self.busy_rate = busy_rate
        # Long-run busy fraction must be 1/burstiness; with geometric
        # sojourns, fraction = mean_busy / (mean_busy + mean_idle).
        busy_fraction = 1.0 / burstiness
        mean_idle = mean_busy_slots * (1.0 - busy_fraction) / busy_fraction
        self._exit_busy = 1.0 / mean_busy_slots
        self._exit_idle = 1.0 / mean_idle
        self.rng = rng if rng is not None else np.random.default_rng()
        self.busy = False
        self.arrivals = 0
        self.slots = 0

    def step(self) -> bool:
        """Advance one slot; return True if a call arrives."""
        self.slots += 1
        if self.busy:
            if self.rng.random() < self._exit_busy:
                self.busy = False
        else:
            if self.rng.random() < self._exit_idle:
                self.busy = True
        hit = self.busy and self.rng.random() < self.busy_rate
        if hit:
            self.arrivals += 1
        return hit

    @property
    def empirical_rate(self) -> float:
        """Observed arrivals per slot so far (0 before any slot)."""
        if self.slots == 0:
            return 0.0
        return self.arrivals / self.slots
