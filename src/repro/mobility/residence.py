"""Cell residence-time distributions for general (CTRW) mobility.

The paper's random walk is memoryless: every slot is an independent
move-with-probability-``q`` trial, i.e. the time spent in a cell is
geometric with mean ``1/q``.  Real PCS traffic is not -- Zhao & Liew
(arXiv 0808.1062) model location management under a continuous-time
random walk with general residence times, and Koukoutsidis et al.
(arXiv 0904.0771) show the residence-time *variance* alone changes
paging performance.  This module provides the pluggable residence
distributions :class:`~repro.mobility.ctrw.CTRWWalk` draws from:

:class:`GeometricResidence`
    the discrete-time analogue of exponential residence; plugging it
    into a CTRW walker reproduces the paper's walk distributionally
    (the degeneracy the conformance oracle ``ctrw-exp-matches-uniform-
    walk`` guards).
:class:`DeterministicResidence`
    the zero-variance limit (clockwork movement).
:class:`HyperexponentialResidence`
    a mixture of geometrics -- squared coefficient of variation above
    1, the classic high-variance phase-type family.
:class:`TruncatedParetoResidence`
    heavy-tailed residence, truncated so every moment exists.

Distributions are *discrete* (whole slots, minimum one slot) and carry
exact moments: :meth:`ResidenceDistribution.mean` and ``variance`` are
computed from the actual probability mass function the sampler
realizes, never from a continuous approximation -- the property suite
asserts sample moments against them directly.

Sampling is uniform-driven: :meth:`ResidenceDistribution.from_uniforms`
maps ``U(0,1)`` variates to residence slots by inverse CDF, so the
vectorized engine can feed it counter-RNG streams (see
:mod:`repro.simulation.kernels`) and stay stateless and layout-free,
while the per-cell walker feeds it draws from its own generator.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "DeterministicResidence",
    "GeometricResidence",
    "HyperexponentialResidence",
    "ResidenceDistribution",
    "TruncatedParetoResidence",
    "residence_from_spec",
]

#: Largest representable residence (slots); caps inverse-CDF outputs so
#: a pathological float never produces an absurd countdown.
_MAX_RESIDENCE = 10**6


def _geometric_slots(u: np.ndarray, expiry: float) -> np.ndarray:
    """Inverse CDF of the geometric distribution on {1, 2, ...}.

    ``P(T = k) = p (1-p)^(k-1)`` with ``p = expiry``; ``u = 0`` maps to
    1 and ``u -> 1`` to the tail.
    """
    if expiry >= 1.0:
        return np.ones_like(np.asarray(u, dtype=np.float64), dtype=np.int64)
    raw = np.ceil(np.log1p(-np.asarray(u, dtype=np.float64)) / math.log1p(-expiry))
    return np.clip(raw, 1, _MAX_RESIDENCE).astype(np.int64)


class ResidenceDistribution:
    """Base class: a distribution over whole residence slots (>= 1)."""

    #: Short kind tag used by :meth:`spec` / :func:`residence_from_spec`.
    kind = "abstract"

    def from_uniforms(self, u_branch: np.ndarray, u_value: np.ndarray) -> np.ndarray:
        """Map two U(0,1) arrays to int64 residence slots (>= 1).

        ``u_branch`` selects a mixture component (ignored by pure
        distributions); ``u_value`` drives the inverse CDF.  Both
        engines share this exact transform, which is what makes the
        per-cell and vectorized CTRW walkers distributionally
        identical.
        """
        raise NotImplementedError

    def mean(self) -> float:
        """Exact mean of the realized (discrete) distribution."""
        raise NotImplementedError

    def variance(self) -> float:
        """Exact variance of the realized (discrete) distribution."""
        raise NotImplementedError

    def cv2(self) -> float:
        """Squared coefficient of variation ``Var[T] / E[T]^2``."""
        m = self.mean()
        return self.variance() / (m * m)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one residence time using ``rng`` (two uniforms)."""
        u_branch = np.asarray(rng.random())
        u_value = np.asarray(rng.random())
        return int(self.from_uniforms(u_branch, u_value))

    def spec(self) -> Dict[str, object]:
        """JSON-ready description; inverse of :func:`residence_from_spec`."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.spec().items() if k != "kind"
        )
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ResidenceDistribution) and self.spec() == other.spec()
        )

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self.spec().items())))


class GeometricResidence(ResidenceDistribution):
    """Memoryless residence: ``P(T = k) = p (1-p)^(k-1)``.

    The discrete-slot analogue of exponential residence.  A CTRW walker
    with ``GeometricResidence(q)`` moves with probability ``q`` in
    every slot independently -- exactly the paper's uniform walk.
    """

    kind = "geometric"

    def __init__(self, expiry_probability: float) -> None:
        if not 0.0 < expiry_probability <= 1.0:
            raise ParameterError(
                f"expiry_probability must be in (0, 1], got {expiry_probability}"
            )
        self.expiry_probability = float(expiry_probability)

    def from_uniforms(self, u_branch: np.ndarray, u_value: np.ndarray) -> np.ndarray:
        return _geometric_slots(u_value, self.expiry_probability)

    def mean(self) -> float:
        return 1.0 / self.expiry_probability

    def variance(self) -> float:
        p = self.expiry_probability
        return (1.0 - p) / (p * p)

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind, "expiry_probability": self.expiry_probability}


class DeterministicResidence(ResidenceDistribution):
    """Fixed residence: exactly ``period`` slots in every cell."""

    kind = "deterministic"

    def __init__(self, period: int) -> None:
        if not isinstance(period, (int, np.integer)) or isinstance(period, bool):
            raise ParameterError(f"period must be an int, got {period!r}")
        if not 1 <= period <= _MAX_RESIDENCE:
            raise ParameterError(
                f"period must be in [1, {_MAX_RESIDENCE}], got {period}"
            )
        self.period = int(period)

    def from_uniforms(self, u_branch: np.ndarray, u_value: np.ndarray) -> np.ndarray:
        shape = np.asarray(u_value, dtype=np.float64).shape
        return np.full(shape, self.period, dtype=np.int64)

    def mean(self) -> float:
        return float(self.period)

    def variance(self) -> float:
        return 0.0

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind, "period": self.period}


class HyperexponentialResidence(ResidenceDistribution):
    """A weighted mixture of geometric residences (``CV^2 >= 1``).

    Each move first picks component ``i`` with probability
    ``weights[i]``, then draws a geometric residence with expiry
    probability ``rates[i]`` -- the standard phase-type construction
    for high-variance holding times, in discrete slots.
    """

    kind = "hyperexponential"

    def __init__(self, rates: Tuple[float, ...], weights: Tuple[float, ...]) -> None:
        rates = tuple(float(r) for r in rates)
        weights = tuple(float(w) for w in weights)
        if len(rates) < 1 or len(rates) != len(weights):
            raise ParameterError(
                f"rates and weights must be equal-length non-empty tuples, "
                f"got {rates!r} / {weights!r}"
            )
        for r in rates:
            if not 0.0 < r <= 1.0:
                raise ParameterError(f"every rate must be in (0, 1], got {r}")
        for w in weights:
            if w <= 0.0:
                raise ParameterError(f"every weight must be > 0, got {w}")
        total = sum(weights)
        if abs(total - 1.0) > 1e-9:
            raise ParameterError(f"weights must sum to 1, got {total}")
        self.rates = rates
        self.weights = weights
        self._cum_weights = np.cumsum(np.asarray(weights, dtype=np.float64))
        # Guard the final bin against float round-off: u_branch < 1 always.
        self._cum_weights[-1] = 1.0

    @classmethod
    def fit(cls, mean: float, cv2: float) -> "HyperexponentialResidence":
        """Two-component fit with balanced means for a target mean/CV^2.

        The classic balanced-means H2 fit: component ``i`` contributes
        ``mean/2`` to the total mean, and the mixing probability is set
        from the target squared coefficient of variation ``cv2 > 1``.
        The *geometric* mixture hits ``mean`` exactly; the realized
        ``cv2`` (see :meth:`cv2`) differs from the continuous target by
        the discretization and is what tests should assert against.
        Requires ``mean >= 2`` so both expiry probabilities stay <= 1.
        """
        if cv2 <= 1.0:
            raise ParameterError(f"hyperexponential fit needs cv2 > 1, got {cv2}")
        if mean < 2.0:
            raise ParameterError(
                f"hyperexponential fit needs mean >= 2 slots, got {mean}"
            )
        p = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        rates = (2.0 * p / mean, 2.0 * (1.0 - p) / mean)
        return cls(rates=rates, weights=(p, 1.0 - p))

    def from_uniforms(self, u_branch: np.ndarray, u_value: np.ndarray) -> np.ndarray:
        u_branch = np.asarray(u_branch, dtype=np.float64)
        u_value = np.asarray(u_value, dtype=np.float64)
        component = np.searchsorted(self._cum_weights, u_branch, side="right")
        component = np.minimum(component, len(self.rates) - 1)
        out = np.empty(u_value.shape, dtype=np.int64)
        flat_component = np.atleast_1d(component)
        flat_value = np.atleast_1d(u_value)
        flat_out = np.atleast_1d(out)
        for index, rate in enumerate(self.rates):
            mask = flat_component == index
            if mask.any():
                flat_out[mask] = _geometric_slots(flat_value[mask], rate)
        if out.shape == ():
            return flat_out.reshape(())
        return out

    def mean(self) -> float:
        return sum(w / r for w, r in zip(self.weights, self.rates))

    def variance(self) -> float:
        # E[T^2] of a geometric with expiry p is (2 - p) / p^2.
        second = sum(w * (2.0 - r) / (r * r) for w, r in zip(self.weights, self.rates))
        m = self.mean()
        return second - m * m

    def spec(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "rates": list(self.rates),
            "weights": list(self.weights),
        }


class TruncatedParetoResidence(ResidenceDistribution):
    """Heavy-tailed residence: ceil of a truncated Pareto variate.

    A continuous Pareto with shape ``alpha`` on ``[minimum, maximum]``
    is sampled by inverse CDF and rounded up to whole slots.  The
    truncation keeps every moment finite (so sample-moment tests are
    meaningful) while preserving the power-law body that makes the
    movement process bursty.  Moments are computed exactly from the
    discretized pmf ``P(T = k) = F(k) - F(k-1)``.
    """

    kind = "pareto"

    def __init__(self, alpha: float, minimum: float, maximum: float) -> None:
        if not (alpha > 0.0 and math.isfinite(alpha)):
            raise ParameterError(f"alpha must be finite and > 0, got {alpha}")
        if not 1.0 <= minimum < maximum:
            raise ParameterError(
                f"need 1 <= minimum < maximum, got minimum={minimum}, "
                f"maximum={maximum}"
            )
        if maximum > _MAX_RESIDENCE:
            raise ParameterError(
                f"maximum must be <= {_MAX_RESIDENCE} slots, got {maximum}"
            )
        self.alpha = float(alpha)
        self.minimum = float(minimum)
        self.maximum = float(maximum)
        self._tail = (self.minimum / self.maximum) ** self.alpha
        self._moments: Optional[Tuple[float, float]] = None

    def _cdf(self, t: np.ndarray) -> np.ndarray:
        """Continuous truncated-Pareto CDF, clamped to [0, 1]."""
        t = np.clip(np.asarray(t, dtype=np.float64), self.minimum, self.maximum)
        return ((1.0 - (self.minimum / t) ** self.alpha) / (1.0 - self._tail))

    def from_uniforms(self, u_branch: np.ndarray, u_value: np.ndarray) -> np.ndarray:
        u_value = np.asarray(u_value, dtype=np.float64)
        x = self.minimum / (1.0 - u_value * (1.0 - self._tail)) ** (1.0 / self.alpha)
        slots = np.ceil(np.minimum(x, self.maximum))
        return np.clip(slots, 1, _MAX_RESIDENCE).astype(np.int64)

    def _pmf_moments(self) -> Tuple[float, float]:
        if self._moments is None:
            ks = np.arange(math.floor(self.minimum), math.ceil(self.maximum) + 1)
            pmf = self._cdf(ks) - self._cdf(ks - 1)
            mean = float(pmf @ ks)
            second = float(pmf @ (ks.astype(np.float64) ** 2))
            self._moments = (mean, second - mean * mean)
        return self._moments

    def mean(self) -> float:
        return self._pmf_moments()[0]

    def variance(self) -> float:
        return self._pmf_moments()[1]

    def spec(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "alpha": self.alpha,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }


_KINDS = {
    cls.kind: cls
    for cls in (
        GeometricResidence,
        DeterministicResidence,
        HyperexponentialResidence,
        TruncatedParetoResidence,
    )
}


def residence_from_spec(payload: Dict[str, object]) -> ResidenceDistribution:
    """Rebuild a distribution from its :meth:`~ResidenceDistribution.spec`."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ParameterError(f"residence spec must be a dict with a 'kind': {payload!r}")
    kind = payload["kind"]
    cls = _KINDS.get(kind)
    if cls is None:
        raise ParameterError(
            f"unknown residence kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    params = {k: v for k, v in payload.items() if k != "kind"}
    if cls is HyperexponentialResidence:
        return cls(
            rates=tuple(params.get("rates", ())),
            weights=tuple(params.get("weights", ())),
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ParameterError(f"bad residence spec {payload!r}: {exc}") from exc
