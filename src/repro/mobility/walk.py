"""Discrete-time random-walk mobility (paper Section 2.1).

At each discrete time slot a terminal moves to one of its neighboring
cells with probability ``q`` (choosing uniformly among neighbors:
``1/2`` each in 1-D, ``1/6`` each on the hex grid) and stays put with
probability ``1 - q``.

The walker is deliberately minimal -- the decision of *whether* a slot
contains a move is made by the caller (the simulation engine owns the
per-slot event structure so that move/call exclusivity matches the
Markov chain; see :mod:`repro.simulation.engine`) -- but a standalone
:meth:`RandomWalk.step` that performs the full move-or-stay draw is
provided for trace generation and ad-hoc experiments.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..core.parameters import MobilityParams
from ..exceptions import ParameterError
from ..geometry.topology import Cell, CellTopology

__all__ = ["RandomWalk"]


class RandomWalk:
    """A seeded random walk on a cell topology.

    Parameters
    ----------
    topology:
        The cell geometry to walk on.
    move_probability:
        Per-slot probability ``q`` of moving.
    rng:
        A :class:`numpy.random.Generator`; pass one seeded from your
        experiment so runs are reproducible.  A fresh default generator
        is created if omitted.
    start:
        Initial cell; defaults to the topology origin.
    """

    def __init__(
        self,
        topology: CellTopology,
        move_probability: float,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Cell] = None,
    ) -> None:
        if not 0.0 < move_probability <= 1.0:
            raise ParameterError(
                f"move_probability must be in (0, 1], got {move_probability}"
            )
        self.topology = topology
        self.move_probability = move_probability
        self.rng = rng if rng is not None else np.random.default_rng()
        self.position: Cell = start if start is not None else topology.origin
        topology.validate_cell(self.position)
        self.slots = 0
        self.moves = 0

    @classmethod
    def from_params(
        cls,
        topology: CellTopology,
        params: MobilityParams,
        rng: Optional[np.random.Generator] = None,
        start: Optional[Cell] = None,
    ) -> "RandomWalk":
        """Build a walk from a :class:`MobilityParams` (uses its ``q``)."""
        return cls(topology, params.move_probability, rng=rng, start=start)

    def move(self) -> Cell:
        """Unconditionally move to a uniformly random neighbor.

        Use when the caller has already decided this slot contains a
        move (the simulation engine's per-slot event draw).
        """
        options = self.topology.neighbors(self.position)
        index = int(self.rng.integers(len(options)))
        self.position = options[index]
        self.moves += 1
        return self.position

    def step(self) -> Cell:
        """Advance one slot: move with probability ``q``, else stay."""
        self.slots += 1
        if self.rng.random() < self.move_probability:
            return self.move()
        return self.position

    def walk(self, slots: int) -> Iterator[Cell]:
        """Yield the position after each of ``slots`` consecutive steps."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        for _ in range(slots):
            yield self.step()

    def distance_from(self, cell: Cell) -> int:
        """Current ring distance from ``cell``."""
        return self.topology.distance(cell, self.position)

    def __repr__(self) -> str:
        return (
            f"RandomWalk(topology={self.topology!r}, "
            f"q={self.move_probability}, position={self.position!r})"
        )
