"""Fluid-flow mobility baseline (reference [8] of the paper).

The paper argues the random-walk model fits pedestrians better than the
fluid-flow model of Xie, Tabbane & Goodman, which suits vehicular
traffic ("continuous movement with infrequent speed and direction
changes").  The fluid-flow model is included here as the comparison
baseline: it predicts the *boundary crossing rate* out of a region from
macroscopic quantities, which yields a location-update rate for an
LA-style scheme and lets the strategy bench compare both worlds.

For a region with perimeter ``L`` and area ``S`` populated by terminals
of mean speed ``v`` with uniformly distributed directions, the outward
crossing rate per terminal is the classic

    R = v * L / (pi * S).

We express regions in cell units: a cell has unit area, so a hex-grid
residing area of threshold ``d`` has area ``g(d) = 3d(d+1) + 1`` and
(approximating the hex cluster by the enclosing hexagon) perimeter
proportional to the outer ring size ``6d + 3`` cell widths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ParameterError

__all__ = ["FluidFlowModel"]

#: Area of a unit-edge regular hexagon; used to convert "cells" to a
#: consistent length/area unit system (edge length 1).
_HEX_AREA = 3.0 * math.sqrt(3.0) / 2.0
#: Width of a unit-edge hexagon across flats (the distance advanced by
#: one cell crossing).
_HEX_WIDTH = math.sqrt(3.0)


@dataclass(frozen=True)
class FluidFlowModel:
    """Fluid-flow crossing-rate model for hex-cell clusters.

    Parameters
    ----------
    mean_speed:
        Mean terminal speed in cell-widths per slot.  To compare with a
        random walk that moves with probability ``q`` per slot, note
        the walk's mean displacement per slot is ``q`` cell-widths, so
        ``mean_speed = q`` is the natural calibration.
    """

    mean_speed: float

    def __post_init__(self) -> None:
        if not self.mean_speed > 0:
            raise ParameterError(f"mean_speed must be > 0, got {self.mean_speed}")

    def crossing_rate(self, d: int) -> float:
        """Expected boundary crossings per slot out of a radius-``d`` cluster.

        ``R = v L / (pi S)`` with the cluster's perimeter and area in
        consistent units (hexagon edge = 1).
        """
        if d < 0:
            raise ParameterError(f"d must be >= 0, got {d}")
        cells = 3 * d * (d + 1) + 1
        area = cells * _HEX_AREA
        # Boundary of the cluster: the outer ring exposes 6d + 3... for
        # d = 0 a single hexagon's own 6 edges.  Each exposed edge has
        # length 1; count exposed edges exactly: cluster of radius d is
        # a hexagon of side (d + 1) in cell counts, whose boundary
        # consists of 6 * (2d + 1) cell edges.
        perimeter = 6.0 * (2 * d + 1)
        v = self.mean_speed * _HEX_WIDTH  # cell-widths -> edge units
        return v * perimeter / (math.pi * area)

    def update_rate(self, d: int) -> float:
        """Location updates per slot for a distance-``d`` scheme.

        Under fluid flow every outward crossing of the residing-area
        boundary is an update, so this is :meth:`crossing_rate`.
        """
        return self.crossing_rate(d)

    def expected_updates(self, d: int, slots: int) -> float:
        """Expected number of updates over ``slots`` slots."""
        if slots < 0:
            raise ParameterError(f"slots must be >= 0, got {slots}")
        return self.crossing_rate(d) * slots
