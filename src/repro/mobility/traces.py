"""Movement/arrival trace recording and replay.

A :class:`Trace` is the slot-by-slot record of one terminal: its cell
position and whether a call arrived.  Traces decouple workload
generation from protocol evaluation, so every update strategy in a
comparison bench sees the *identical* movement and call sequence --
the difference in measured cost is then attributable to the strategy
alone, not to sampling noise.

Traces serialize to a compact JSON format for archiving experiment
inputs alongside results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ParameterError, SimulationError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.topology import Cell, CellTopology
from .arrivals import BernoulliArrivals
from .walk import RandomWalk

__all__ = ["Trace", "TraceStep", "generate_trace"]

#: One slot of a trace: (cell, call_arrived).
TraceStep = Tuple[Cell, bool]

_TOPOLOGY_NAMES = {"line": LineTopology, "hex": HexTopology, "square": SquareTopology}


def _topology_name(topology: CellTopology) -> str:
    for name, cls in _TOPOLOGY_NAMES.items():
        if isinstance(topology, cls):
            return name
    raise ParameterError(f"cannot serialize topology {topology!r}")


@dataclass(frozen=True)
class Trace:
    """An immutable slot-by-slot terminal history.

    Attributes
    ----------
    topology:
        Geometry the positions live in.
    start:
        Cell occupied before slot 0.
    steps:
        For each slot, the position *after* the slot's movement (equal
        to the previous position if the terminal stayed) and whether a
        call arrived during the slot.
    """

    topology: CellTopology
    start: Cell
    steps: Tuple[TraceStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def positions(self) -> List[Cell]:
        """Positions after each slot."""
        return [cell for cell, _ in self.steps]

    @property
    def call_slots(self) -> List[int]:
        """Indices of slots in which a call arrived."""
        return [i for i, (_, call) in enumerate(self.steps) if call]

    @property
    def move_count(self) -> int:
        """Number of slots in which the terminal changed cells."""
        moves = 0
        prev = self.start
        for cell, _ in self.steps:
            if cell != prev:
                moves += 1
            prev = cell
        return moves

    def max_distance_from_start(self) -> int:
        """Largest ring distance from the start cell ever reached."""
        best = 0
        for cell, _ in self.steps:
            best = max(best, self.topology.distance(self.start, cell))
        return best

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string (positions as lists for hex cells)."""
        def encode(cell: Cell):
            return list(cell) if isinstance(cell, tuple) else cell

        payload = {
            "topology": _topology_name(self.topology),
            "start": encode(self.start),
            "steps": [[encode(cell), bool(call)] for cell, call in self.steps],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        def decode(raw) -> Cell:
            return tuple(raw) if isinstance(raw, list) else raw

        try:
            payload = json.loads(text)
            topology = _TOPOLOGY_NAMES[payload["topology"]]()
            start = decode(payload["start"])
            steps = tuple(
                (decode(cell), bool(call)) for cell, call in payload["steps"]
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed trace JSON: {exc}") from exc
        return cls(topology=topology, start=start, steps=steps)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def generate_trace(
    topology: CellTopology,
    move_probability: float,
    call_probability: float,
    slots: int,
    seed: Optional[int] = None,
    start: Optional[Cell] = None,
) -> Trace:
    """Generate a random trace under the paper's mobility/traffic model.

    Each slot draws movement and call arrival as *competing* events
    matching the Markov chain semantics: with probability ``c`` the
    slot is a call (no movement), otherwise with probability ``q`` the
    terminal moves.  See :mod:`repro.simulation.engine` for the
    rationale.
    """
    if slots < 0:
        raise ParameterError(f"slots must be >= 0, got {slots}")
    rng = np.random.default_rng(seed)
    walk = RandomWalk(topology, move_probability, rng=rng, start=start)
    arrivals = BernoulliArrivals(call_probability, rng=rng)
    origin = walk.position
    steps: List[TraceStep] = []
    for _ in range(slots):
        call = arrivals.step()
        if not call and rng.random() < move_probability:
            walk.move()
        steps.append((walk.position, call))
    return Trace(topology=topology, start=origin, steps=tuple(steps))
