"""Movement/arrival trace recording and replay.

A :class:`Trace` is the slot-by-slot record of one terminal: its cell
position and whether a call arrived.  Traces decouple workload
generation from protocol evaluation, so every update strategy in a
comparison bench sees the *identical* movement and call sequence --
the difference in measured cost is then attributable to the strategy
alone, not to sampling noise.

Traces serialize to a compact JSON format for archiving experiment
inputs alongside results.

:func:`replay_trace` closes the loop: it feeds a recorded trace back
through either simulation engine (per-cell or vectorized) and returns
the cost meter, so a recorded workload can be re-costed under any
distance threshold -- and the two engines can be checked against each
other on the *identical* event sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ParameterError, SimulationError
from ..geometry import HexTopology, LineTopology, SquareTopology
from ..geometry.topology import Cell, CellTopology
from .arrivals import BernoulliArrivals
from .ctrw import CTRWSpec
from .walk import RandomWalk

__all__ = ["Trace", "TraceStep", "generate_trace", "replay_trace"]

#: One slot of a trace: (cell, call_arrived).
TraceStep = Tuple[Cell, bool]

_TOPOLOGY_NAMES = {"line": LineTopology, "hex": HexTopology, "square": SquareTopology}


def _topology_name(topology: CellTopology) -> str:
    for name, cls in _TOPOLOGY_NAMES.items():
        if isinstance(topology, cls):
            return name
    raise ParameterError(f"cannot serialize topology {topology!r}")


@dataclass(frozen=True)
class Trace:
    """An immutable slot-by-slot terminal history.

    Attributes
    ----------
    topology:
        Geometry the positions live in.
    start:
        Cell occupied before slot 0.
    steps:
        For each slot, the position *after* the slot's movement (equal
        to the previous position if the terminal stayed) and whether a
        call arrived during the slot.
    """

    topology: CellTopology
    start: Cell
    steps: Tuple[TraceStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def positions(self) -> List[Cell]:
        """Positions after each slot."""
        return [cell for cell, _ in self.steps]

    @property
    def call_slots(self) -> List[int]:
        """Indices of slots in which a call arrived."""
        return [i for i, (_, call) in enumerate(self.steps) if call]

    @property
    def move_count(self) -> int:
        """Number of slots in which the terminal changed cells."""
        moves = 0
        prev = self.start
        for cell, _ in self.steps:
            if cell != prev:
                moves += 1
            prev = cell
        return moves

    def max_distance_from_start(self) -> int:
        """Largest ring distance from the start cell ever reached."""
        best = 0
        for cell, _ in self.steps:
            best = max(best, self.topology.distance(self.start, cell))
        return best

    # -- serialization ---------------------------------------------------

    def to_json(self) -> str:
        """Serialize to a JSON string (positions as lists for hex cells)."""
        def encode(cell: Cell):
            return list(cell) if isinstance(cell, tuple) else cell

        payload = {
            "topology": _topology_name(self.topology),
            "start": encode(self.start),
            "steps": [[encode(cell), bool(call)] for cell, call in self.steps],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        def decode(raw) -> Cell:
            return tuple(raw) if isinstance(raw, list) else raw

        try:
            payload = json.loads(text)
            topology = _TOPOLOGY_NAMES[payload["topology"]]()
            start = decode(payload["start"])
            steps = tuple(
                (decode(cell), bool(call)) for cell, call in payload["steps"]
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed trace JSON: {exc}") from exc
        return cls(topology=topology, start=start, steps=steps)

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as JSON."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def generate_trace(
    topology: CellTopology,
    move_probability: float,
    call_probability: float,
    slots: int,
    seed: Optional[int] = None,
    start: Optional[Cell] = None,
    walk: Optional[CTRWSpec] = None,
) -> Trace:
    """Generate a random trace under the paper's mobility/traffic model.

    Each slot draws movement and call arrival as *competing* events
    matching the Markov chain semantics: with probability ``c`` the
    slot is a call (no movement), otherwise with probability ``q`` the
    terminal moves.  See :mod:`repro.simulation.engine` for the
    rationale.

    With ``walk`` set to a :class:`CTRWSpec`, the terminal instead
    follows that residence-clock process under the timed slot semantics
    (the call draw is independent of movement; the clock ticks every
    slot; the call is recorded against the slot whose *pre-move*
    position it pages -- the same order both engines use).
    ``move_probability`` is ignored in that case: the spec's residence
    distribution sets the movement rate.
    """
    if slots < 0:
        raise ParameterError(f"slots must be >= 0, got {slots}")
    rng = np.random.default_rng(seed)
    arrivals = BernoulliArrivals(call_probability, rng=rng)
    steps: List[TraceStep] = []
    if walk is not None:
        if not isinstance(walk, CTRWSpec):
            raise ParameterError(f"walk must be a CTRWSpec, got {walk!r}")
        walker = walk.build_walker(topology, rng, start)
        origin = walker.position
        for _ in range(slots):
            call = arrivals.step()
            if walker.move_due():
                walker.move()
            steps.append((walker.position, call))
        return Trace(topology=topology, start=origin, steps=tuple(steps))
    walker = RandomWalk(topology, move_probability, rng=rng, start=start)
    origin = walker.position
    for _ in range(slots):
        call = arrivals.step()
        if not call and rng.random() < move_probability:
            walker.move()
        steps.append((walker.position, call))
    return Trace(topology=topology, start=origin, steps=tuple(steps))


class _TraceArrivals:
    """Call-arrival process replaying a trace's recorded call flags."""

    def __init__(self, steps: Sequence[TraceStep]) -> None:
        self._calls = [bool(call) for _, call in steps]
        self._index = 0

    def step(self) -> bool:
        if self._index >= len(self._calls):
            raise SimulationError("trace replay ran past the recorded slots")
        call = self._calls[self._index]
        self._index += 1
        return call


class _TraceWalker(RandomWalk):
    """Walker replaying a trace's recorded positions slot by slot.

    ``timed`` routes the engine through the timed slot semantics (call
    drawn first, ``move_due`` asked every slot), matching the order the
    trace was recorded in.  ``move_due`` peeks at the slot's recorded
    position and reports a move only when the cell actually changes, so
    the move meter matches the trace's :attr:`Trace.move_count`.
    """

    timed = True

    def __init__(self, trace: Trace) -> None:
        # move_probability is never drawn against: moves are scripted.
        super().__init__(trace.topology, 1.0, start=trace.start)
        self._positions = [cell for cell, _ in trace.steps]
        self._index = 0
        self._pending: Optional[Cell] = None

    def move_due(self) -> bool:
        if self._index >= len(self._positions):
            raise SimulationError("trace replay ran past the recorded slots")
        target = self._positions[self._index]
        self._index += 1
        if target == self.position:
            return False
        self._pending = target
        return True

    def move(self) -> Cell:
        if self._pending is None:
            raise SimulationError("move() called with no recorded move pending")
        self.position = self._pending
        self._pending = None
        self.slots += 1
        self.moves += 1
        return self.position


def replay_trace(
    trace: Trace,
    threshold: int,
    costs,
    max_delay: int = 1,
    plan=None,
    engine: str = "per-cell",
):
    """Re-cost a recorded trace under a distance strategy.

    Replays ``trace`` through the chosen engine -- ``"per-cell"``
    (:class:`~repro.simulation.engine.SimulationEngine` with a scripted
    walker) or ``"vectorized"``
    (:func:`~repro.simulation.vectorized.replay_trace_meters`) -- and
    returns the resulting meter snapshot.  Both engines see the
    identical event sequence, so their meters must agree; the
    conformance tier pins exactly that.
    """
    if engine == "vectorized":
        from ..simulation.vectorized import replay_trace_meters  # local: cycle

        return replay_trace_meters(
            trace, threshold, costs, max_delay=max_delay, plan=plan
        )
    if engine != "per-cell":
        raise ParameterError(
            f"engine must be 'per-cell' or 'vectorized', got {engine!r}"
        )
    from ..core.parameters import MobilityParams  # local: avoid cycle
    from ..simulation.engine import SimulationEngine  # local: avoid cycle
    from ..strategies.distance import DistanceStrategy  # local: avoid cycle

    walker = _TraceWalker(trace)
    sim = SimulationEngine(
        topology=trace.topology,
        strategy=DistanceStrategy(threshold, max_delay=max_delay, plan=plan),
        # Placeholder rates: a scripted walker and scripted arrivals
        # never consult (q, c).
        mobility=MobilityParams(move_probability=0.5, call_probability=0.25),
        costs=costs,
        seed=0,
        start=trace.start,
        arrivals=_TraceArrivals(trace.steps),
        walker_factory=lambda topology, q, rng, start: walker,
    )
    return sim.run(len(trace))
