"""Operator-side workloads: subscriber populations and fleet planning.

Builds the population layer the paper's closing discussion implies:
user archetypes, synthetic subscriber sampling, and the per-user-vs-
shared-threshold planning analysis that prices the paper's headline
capability (per-terminal tuning) at fleet scale.
"""

from .planning import FleetPlan, UserPlan, plan_fleet
from .profiles import (
    DEFAULT_MIX,
    PEDESTRIAN,
    Population,
    PopulationArrays,
    STATIC,
    UserProfile,
    VEHICLE,
)

__all__ = [
    "DEFAULT_MIX",
    "FleetPlan",
    "PEDESTRIAN",
    "Population",
    "PopulationArrays",
    "STATIC",
    "UserPlan",
    "UserProfile",
    "VEHICLE",
    "plan_fleet",
]
