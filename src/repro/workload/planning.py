"""Fleet-level policy planning over a subscriber population.

Quantifies the paper's closing remark at operator scale: how much
signaling does *per-user* threshold tuning save compared to one
population-average threshold?  For every sampled subscriber the
analysis computes

* the cost under their personally optimal threshold (the paper's
  dynamic/per-user reading), and
* the cost under the single threshold that is optimal for the
  population-average ``(q, c)`` (the static reading),

then aggregates into fleet totals, per-profile means, and the
distribution of per-user regret.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from ..core.costs import CostEvaluator
from ..core.models import MobilityModel, TwoDimensionalModel
from ..core.parameters import CostParams, MobilityParams
from ..core.threshold import find_optimal_threshold
from ..exceptions import ParameterError
from .profiles import Population, UserProfile

__all__ = ["UserPlan", "FleetPlan", "plan_fleet"]


@dataclass(frozen=True)
class UserPlan:
    """One subscriber's costs under both policy regimes."""

    profile_name: str
    mobility: MobilityParams
    personal_threshold: int
    personal_cost: float
    shared_threshold: int
    shared_cost: float

    @property
    def regret(self) -> float:
        """Extra cost per slot the shared policy imposes on this user."""
        return self.shared_cost - self.personal_cost

    @property
    def relative_regret(self) -> float:
        """Regret as a fraction of the user's personal optimum."""
        if self.personal_cost == 0:
            return 0.0 if self.shared_cost == 0 else math.inf
        return self.regret / self.personal_cost


@dataclass(frozen=True)
class FleetPlan:
    """Aggregated planning results for a sampled population."""

    users: List[UserPlan]
    shared_threshold: int
    max_delay: float

    def __post_init__(self) -> None:
        # Every aggregate below is a mean/quantile over the users; an
        # empty plan would silently turn them all into NaN.
        if not self.users:
            raise ParameterError("FleetPlan needs at least one UserPlan")

    @property
    def size(self) -> int:
        return len(self.users)

    @property
    def personal_fleet_cost(self) -> float:
        """Mean per-slot cost per user under per-user tuning."""
        return float(np.mean([u.personal_cost for u in self.users]))

    @property
    def shared_fleet_cost(self) -> float:
        """Mean per-slot cost per user under the shared threshold."""
        return float(np.mean([u.shared_cost for u in self.users]))

    @property
    def fleet_saving(self) -> float:
        """Relative fleet-wide saving of per-user tuning."""
        shared = self.shared_fleet_cost
        if shared == 0:
            return 0.0
        return (shared - self.personal_fleet_cost) / shared

    def regret_quantiles(self, quantiles=(0.5, 0.9, 0.99)) -> Dict[float, float]:
        """Per-user relative-regret quantiles (who suffers under one-size-fits-all)."""
        values = [u.relative_regret for u in self.users]
        return {
            quantile: float(np.quantile(values, quantile)) for quantile in quantiles
        }

    def by_profile(self) -> Dict[str, Tuple[float, float]]:
        """Per-profile mean (personal, shared) cost."""
        groups: Dict[str, List[UserPlan]] = {}
        for user in self.users:
            groups.setdefault(user.profile_name, []).append(user)
        return {
            name: (
                float(np.mean([u.personal_cost for u in members])),
                float(np.mean([u.shared_cost for u in members])),
            )
            for name, members in groups.items()
        }


def plan_fleet(
    population: Population,
    costs: CostParams,
    max_delay,
    users: int = 200,
    seed: int = 0,
    model_class: Type[MobilityModel] = TwoDimensionalModel,
    d_max: int = 60,
    convention: str = "physical",
) -> FleetPlan:
    """Compute per-user and shared-policy costs for a sampled fleet.

    ``model_class`` picks the geometry (defaults to the hex plane).
    The shared threshold is optimized for the population-average
    ``(q, c)``; each user's costs are then evaluated with their own
    ``(q, c)`` under both thresholds.
    """
    if users < 1:
        raise ParameterError(f"users must be >= 1, got {users}")
    shared_solution = find_optimal_threshold(
        model_class(population.mean_mobility()),
        costs,
        max_delay,
        d_max=d_max,
        convention=convention,
    )
    shared_d = shared_solution.threshold
    plans: List[UserPlan] = []
    for profile, mobility in population.sample_users(users, seed=seed):
        model = model_class(mobility)
        evaluator = CostEvaluator(model, costs, convention=convention)
        personal = find_optimal_threshold(
            model, costs, max_delay, d_max=d_max, convention=convention
        )
        plans.append(
            UserPlan(
                profile_name=profile.name,
                mobility=mobility,
                personal_threshold=personal.threshold,
                personal_cost=personal.total_cost,
                shared_threshold=shared_d,
                shared_cost=evaluator.total_cost(shared_d, max_delay),
            )
        )
    return FleetPlan(users=plans, shared_threshold=shared_d, max_delay=max_delay)
