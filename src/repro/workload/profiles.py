"""Subscriber profiles and synthetic populations.

The paper optimizes one terminal at a time and remarks that its results
"can be applied in static location update schemes such that the network
determines the location update threshold distance according to the
average call arrival and movement probabilities of all the users",
or per-user in dynamic schemes.  This package builds the operator-side
machinery for both readings:

* :class:`UserProfile` -- a named ``(q, c)`` archetype with a weight;
* :class:`Population` -- a weighted mix of profiles that can be sampled
  into concrete subscribers (with per-user jitter, because no two
  pedestrians are identical);
* policy assignment: per-user optimal thresholds versus one
  population-average threshold, so the planning analysis can quantify
  exactly how much the paper's per-user tuning is worth at fleet scale.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import MobilityParams
from ..exceptions import ParameterError

__all__ = [
    "UserProfile",
    "Population",
    "PopulationArrays",
    "PEDESTRIAN",
    "VEHICLE",
    "STATIC",
    "DEFAULT_MIX",
]

#: Clip bounds applied to every sampled user, matching
#: :meth:`UserProfile.sample`.
_Q_MIN, _Q_MAX = 1e-6, 0.95
_C_MIN, _C_MAX = 0.0, 0.5


def _require_seed(seed: Optional[int], method: str) -> int:
    """Reject a missing sampling seed.

    An unseeded draw produces an irreproducible population; once such a
    population is baked into a fleet checkpoint fingerprint, a resumed
    run could silently simulate *different subscribers* than the shards
    already completed.  Every sampling entry point therefore demands an
    explicit seed (the caller can still choose one randomly -- but then
    it is recorded, not lost).
    """
    if seed is None or isinstance(seed, bool) or not isinstance(seed, int):
        raise ParameterError(
            f"{method} requires an explicit integer seed (got {seed!r}): "
            "unseeded populations are irreproducible, and checkpointed "
            "fleet runs must be able to re-derive the exact subscriber "
            "list they were started with"
        )
    return seed


@dataclass(frozen=True)
class UserProfile:
    """A subscriber archetype.

    Parameters
    ----------
    name:
        Label used in reports.
    mobility:
        The archetype's central ``(q, c)``.
    weight:
        Relative share of the population (normalized across the mix).
    jitter:
        Relative log-normal spread applied per sampled user to both
        ``q`` and ``c`` (0 = every user identical to the archetype).
    """

    name: str
    mobility: MobilityParams
    weight: float = 1.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ParameterError(f"weight must be > 0, got {self.weight}")
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")

    def sample(self, rng: np.random.Generator) -> MobilityParams:
        """Draw one concrete user around this archetype.

        Log-normal jitter keeps parameters positive; results are
        clipped into valid ``MobilityParams`` ranges.
        """
        if self.jitter == 0.0:
            return self.mobility
        q = self.mobility.q * float(rng.lognormal(mean=0.0, sigma=self.jitter))
        c = self.mobility.c * float(rng.lognormal(mean=0.0, sigma=self.jitter))
        q = min(max(q, _Q_MIN), _Q_MAX)
        c = min(max(c, _C_MIN), _C_MAX)
        if q + c > 1.0:
            q = 1.0 - c
        return MobilityParams(move_probability=q, call_probability=c)


#: Three stock archetypes used across examples and benches.
PEDESTRIAN = UserProfile(
    "pedestrian", MobilityParams(0.05, 0.01), weight=6.0, jitter=0.3
)
VEHICLE = UserProfile("vehicle", MobilityParams(0.4, 0.01), weight=3.0, jitter=0.25)
STATIC = UserProfile("static", MobilityParams(0.002, 0.03), weight=1.0, jitter=0.2)

#: A plausible downtown mix.
DEFAULT_MIX: Tuple[UserProfile, ...] = (PEDESTRIAN, VEHICLE, STATIC)


@dataclass(frozen=True)
class PopulationArrays:
    """A sampled population as per-terminal NumPy columns.

    The array-of-structs view :meth:`Population.sample_users` returns
    is fine for hundreds of subscribers; the fleet engine needs columns
    (one contiguous array per parameter) for millions.  ``q``/``c`` are
    ``float64``, ``profile_index`` is ``int32`` into ``profile_names``.
    The sampling ``seed`` is recorded so the exact population can be
    re-derived, and :meth:`fingerprint` digests both the configuration
    and the realized arrays for checkpoint identity.
    """

    q: np.ndarray
    c: np.ndarray
    profile_index: np.ndarray
    profile_names: Tuple[str, ...]
    seed: int

    @property
    def count(self) -> int:
        return int(self.q.shape[0])

    def profile_counts(self) -> Dict[str, int]:
        """How many sampled subscribers landed in each profile."""
        tallies = np.bincount(self.profile_index, minlength=len(self.profile_names))
        return {
            name: int(n) for name, n in zip(self.profile_names, tallies)
        }

    def fingerprint(self) -> str:
        """SHA-256 digest of the realized population.

        Hashes the raw array bytes plus the profile names and seed, so
        two populations agree on the fingerprint iff they describe the
        same subscribers in the same order -- the identity fleet
        checkpoints pin.
        """
        digest = hashlib.sha256()
        digest.update(repr((self.profile_names, self.seed, self.count)).encode())
        for column in (self.q, self.c, self.profile_index):
            digest.update(np.ascontiguousarray(column).tobytes())
        return digest.hexdigest()


class Population:
    """A weighted mix of user profiles.

    The mix is normalized once at construction; :meth:`sample_users`
    draws a concrete subscriber list (profile chosen by weight, then
    per-user jitter), deterministically per seed.
    """

    def __init__(self, profiles: Sequence[UserProfile]) -> None:
        if not profiles:
            raise ParameterError("population needs at least one profile")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate profile names: {names}")
        self.profiles: Tuple[UserProfile, ...] = tuple(profiles)
        total = sum(p.weight for p in profiles)
        self._shares = np.array([p.weight / total for p in profiles])

    @property
    def shares(self) -> Dict[str, float]:
        """Normalized population share per profile name."""
        return {p.name: float(s) for p, s in zip(self.profiles, self._shares)}

    def mean_mobility(self) -> MobilityParams:
        """The population-average ``(q, c)`` -- what a one-size-fits-all
        static scheme would be tuned to (ignoring jitter, which is
        mean-one only approximately; the archetype means are used)."""
        q = float(
            sum(s * p.mobility.q for p, s in zip(self.profiles, self._shares))
        )
        c = float(
            sum(s * p.mobility.c for p, s in zip(self.profiles, self._shares))
        )
        if q + c > 1.0:  # pragma: no cover - absurd mixes only
            q = 1.0 - c
        return MobilityParams(move_probability=q, call_probability=c)

    def sample_users(
        self, count: int, seed: Optional[int] = None
    ) -> List[Tuple[UserProfile, MobilityParams]]:
        """Draw ``count`` concrete subscribers.

        Returns ``(archetype, per-user mobility)`` pairs so downstream
        reports can group by profile.  ``seed`` is *required* (the
        keyword default exists only to give omission a clear
        :class:`~repro.exceptions.ParameterError` instead of a
        ``TypeError``): unseeded populations cannot be re-derived, which
        silently breaks checkpoint resume -- see :func:`_require_seed`.
        """
        seed = _require_seed(seed, "Population.sample_users")
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self.profiles), size=count, p=self._shares)
        users: List[Tuple[UserProfile, MobilityParams]] = []
        for index in indices:
            profile = self.profiles[int(index)]
            users.append((profile, profile.sample(rng)))
        return users

    def sample_arrays(
        self, count: int, seed: Optional[int] = None
    ) -> PopulationArrays:
        """Draw ``count`` subscribers as per-terminal parameter columns.

        The columnar, fully vectorized analogue of
        :meth:`sample_users`, built for fleet-scale populations (a
        million subscribers sample in well under a second).  Per-user
        jitter follows the same law as :meth:`UserProfile.sample`
        (log-normal on both ``q`` and ``c``, clipped into valid
        ranges), though the realized draws differ from the sequential
        API -- the two sampling orders consume randomness differently.
        ``seed`` is required, and is recorded on the returned
        :class:`PopulationArrays` for checkpoint fingerprints.
        """
        seed = _require_seed(seed, "Population.sample_arrays")
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(seed)
        profile_index = rng.choice(
            len(self.profiles), size=count, p=self._shares
        ).astype(np.int32)
        base_q = np.array([p.mobility.q for p in self.profiles])
        base_c = np.array([p.mobility.c for p in self.profiles])
        jitter = np.array([p.jitter for p in self.profiles])
        sigma = jitter[profile_index]
        q = base_q[profile_index].copy()
        c = base_c[profile_index].copy()
        jittered = sigma > 0.0
        if jittered.any():
            n = int(jittered.sum())
            q[jittered] *= rng.lognormal(mean=0.0, sigma=sigma[jittered], size=n)
            c[jittered] *= rng.lognormal(mean=0.0, sigma=sigma[jittered], size=n)
        np.clip(q, _Q_MIN, _Q_MAX, out=q)
        np.clip(c, _C_MIN, _C_MAX, out=c)
        overflow = q + c > 1.0
        q[overflow] = 1.0 - c[overflow]
        return PopulationArrays(
            q=q,
            c=c,
            profile_index=profile_index,
            profile_names=tuple(p.name for p in self.profiles),
            seed=seed,
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{p.name}:{s:.2f}" for p, s in zip(self.profiles, self._shares))
        return f"Population({inner})"
