"""Subscriber profiles and synthetic populations.

The paper optimizes one terminal at a time and remarks that its results
"can be applied in static location update schemes such that the network
determines the location update threshold distance according to the
average call arrival and movement probabilities of all the users",
or per-user in dynamic schemes.  This package builds the operator-side
machinery for both readings:

* :class:`UserProfile` -- a named ``(q, c)`` archetype with a weight;
* :class:`Population` -- a weighted mix of profiles that can be sampled
  into concrete subscribers (with per-user jitter, because no two
  pedestrians are identical);
* policy assignment: per-user optimal thresholds versus one
  population-average threshold, so the planning analysis can quantify
  exactly how much the paper's per-user tuning is worth at fleet scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import MobilityParams
from ..exceptions import ParameterError

__all__ = ["UserProfile", "Population", "PEDESTRIAN", "VEHICLE", "STATIC", "DEFAULT_MIX"]


@dataclass(frozen=True)
class UserProfile:
    """A subscriber archetype.

    Parameters
    ----------
    name:
        Label used in reports.
    mobility:
        The archetype's central ``(q, c)``.
    weight:
        Relative share of the population (normalized across the mix).
    jitter:
        Relative log-normal spread applied per sampled user to both
        ``q`` and ``c`` (0 = every user identical to the archetype).
    """

    name: str
    mobility: MobilityParams
    weight: float = 1.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ParameterError(f"weight must be > 0, got {self.weight}")
        if not 0.0 <= self.jitter < 1.0:
            raise ParameterError(f"jitter must be in [0, 1), got {self.jitter}")

    def sample(self, rng: np.random.Generator) -> MobilityParams:
        """Draw one concrete user around this archetype.

        Log-normal jitter keeps parameters positive; results are
        clipped into valid ``MobilityParams`` ranges.
        """
        if self.jitter == 0.0:
            return self.mobility
        q = self.mobility.q * float(rng.lognormal(mean=0.0, sigma=self.jitter))
        c = self.mobility.c * float(rng.lognormal(mean=0.0, sigma=self.jitter))
        q = min(max(q, 1e-6), 0.95)
        c = min(max(c, 0.0), 0.5)
        if q + c > 1.0:
            q = 1.0 - c
        return MobilityParams(move_probability=q, call_probability=c)


#: Three stock archetypes used across examples and benches.
PEDESTRIAN = UserProfile(
    "pedestrian", MobilityParams(0.05, 0.01), weight=6.0, jitter=0.3
)
VEHICLE = UserProfile("vehicle", MobilityParams(0.4, 0.01), weight=3.0, jitter=0.25)
STATIC = UserProfile("static", MobilityParams(0.002, 0.03), weight=1.0, jitter=0.2)

#: A plausible downtown mix.
DEFAULT_MIX: Tuple[UserProfile, ...] = (PEDESTRIAN, VEHICLE, STATIC)


class Population:
    """A weighted mix of user profiles.

    The mix is normalized once at construction; :meth:`sample_users`
    draws a concrete subscriber list (profile chosen by weight, then
    per-user jitter), deterministically per seed.
    """

    def __init__(self, profiles: Sequence[UserProfile]) -> None:
        if not profiles:
            raise ParameterError("population needs at least one profile")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate profile names: {names}")
        self.profiles: Tuple[UserProfile, ...] = tuple(profiles)
        total = sum(p.weight for p in profiles)
        self._shares = np.array([p.weight / total for p in profiles])

    @property
    def shares(self) -> Dict[str, float]:
        """Normalized population share per profile name."""
        return {p.name: float(s) for p, s in zip(self.profiles, self._shares)}

    def mean_mobility(self) -> MobilityParams:
        """The population-average ``(q, c)`` -- what a one-size-fits-all
        static scheme would be tuned to (ignoring jitter, which is
        mean-one only approximately; the archetype means are used)."""
        q = float(
            sum(s * p.mobility.q for p, s in zip(self.profiles, self._shares))
        )
        c = float(
            sum(s * p.mobility.c for p, s in zip(self.profiles, self._shares))
        )
        if q + c > 1.0:  # pragma: no cover - absurd mixes only
            q = 1.0 - c
        return MobilityParams(move_probability=q, call_probability=c)

    def sample_users(
        self, count: int, seed: Optional[int] = None
    ) -> List[Tuple[UserProfile, MobilityParams]]:
        """Draw ``count`` concrete subscribers.

        Returns ``(archetype, per-user mobility)`` pairs so downstream
        reports can group by profile.
        """
        if count < 0:
            raise ParameterError(f"count must be >= 0, got {count}")
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self.profiles), size=count, p=self._shares)
        users: List[Tuple[UserProfile, MobilityParams]] = []
        for index in indices:
            profile = self.profiles[int(index)]
            users.append((profile, profile.sample(rng)))
        return users

    def __repr__(self) -> str:
        inner = ", ".join(f"{p.name}:{s:.2f}" for p, s in zip(self.profiles, self._shares))
        return f"Population({inner})"
